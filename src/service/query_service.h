// QueryService: the concurrent serving layer over the engine.
//
// A QueryService owns a pool of worker threads, a bounded admission queue,
// and the per-query guard configuration, turning the single-query engine
// into something that can take sustained parallel traffic:
//
//   * Admission control: Submit() enqueues into a bounded queue. When the
//     queue is full it waits up to `admission_wait_ms` for space and then
//     fast-fails with XQC0007 (kServiceOverloadedCode) instead of queueing
//     without bound — saturation produces quick, explicit rejections.
//   * Per-tenant quotas (opt-in): QueryRequest::tenant names the traffic
//     source; per-tenant in-flight and queued caps fast-fail a hot
//     tenant's burst with XQC0010 (kTenantOverQuotaCode) at Submit, and
//     the weighted-fair dequeue serves tenants round-robin so one
//     tenant's backlog cannot starve the others.
//   * Deadline-aware load shedding (opt-in): the service keeps an EWMA of
//     recent execution times. On dequeue, a job whose remaining
//     end-to-end budget is below that estimate is a corpse — it is failed
//     fast with XQC0001 instead of burning a worker; at admission, a
//     request whose predicted queue wait already exceeds its budget is
//     rejected with XQC0007 before it ever queues.
//   * Per-query guards: every execution runs under GuardLimits merged from
//     the request and the service defaults. With
//     `deadline_includes_queue_wait` (default), the wall-clock budget is
//     end-to-end: time spent waiting in the admission queue is deducted
//     from the execution deadline, so a saturated service cannot silently
//     stretch latency past the promised bound.
//   * Transient retry: a query whose deadline tripped *because of queue
//     congestion* (the queue wait consumed a significant share of the
//     budget) failed for reasons unrelated to the query itself; the worker
//     retries it once, after a jittered backoff, with a fresh budget.
//     Deterministic failures — memory/output/step trips, W3C errors,
//     caller cancellation — are never retried.
//   * Shutdown: cancels every in-flight query via its CancellationToken
//     (honored within one guard-check quantum), fails everything still
//     queued with XQC0007, and joins the workers.
//
// Threading contract: RegisterDocument / BindSharedVariable / set_schema
// configure state shared by all workers and must be called before the
// first Submit. Submit / Shutdown / counters are thread-safe. Each worker
// builds a private DynamicContext per query; the shared documents and
// variable payloads are immutable and referenced, not copied (see
// DESIGN.md "Threading model").
#ifndef XQC_SERVICE_QUERY_SERVICE_H_
#define XQC_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/engine/engine.h"

namespace xqc {

struct ServiceOptions {
  /// Worker threads executing queries. Clamped to >= 1.
  int num_threads = 4;
  /// Bound on queries admitted but not yet running. Clamped to >= 1.
  size_t max_queue = 64;
  /// How long Submit may block waiting for queue space before fast-failing
  /// with XQC0007. 0 = reject immediately when the queue is full.
  int64_t admission_wait_ms = 0;
  /// Per-query defaults; a request's zero (unlimited) fields inherit these.
  GuardLimits default_limits;
  /// Deduct queue wait from the execution deadline (end-to-end latency
  /// bound). Also what makes congestion-caused deadline trips recognizably
  /// transient.
  bool deadline_includes_queue_wait = true;
  /// Retry a transient (congestion-caused) deadline trip once.
  bool retry_transient = true;
  /// Base backoff before the retry; the actual wait is uniformly jittered
  /// in [base, 2*base) to decorrelate retry storms.
  int64_t retry_backoff_ms = 5;
  /// Seed for the backoff jitter (deterministic by default for tests).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Compilation/execution configuration used for every query.
  EngineOptions engine_options;
  /// DocumentStore serving the workers' fn:doc resolution (non-owning;
  /// must outlive the service). nullptr = the process-wide store. Whether
  /// the store is consulted at all is engine_options.use_doc_store.
  DocumentStore* document_store = nullptr;
  /// Configures the store's persistent snapshot tier at service startup
  /// (applied to `document_store`, or the process-wide store). "" leaves
  /// the store's current snapshot_dir untouched. Whether loads use the
  /// tier is engine_options.use_snapshots.
  std::string snapshot_dir;

  // --- Overload resilience (all default-off; with every knob at its
  // --- default the service behaves exactly like the pre-quota layer).

  /// Per-tenant cap on admitted-but-not-finished queries (queued +
  /// running). Exceeding it fast-fails Submit with XQC0010. 0 = unlimited.
  int64_t tenant_max_in_flight = 0;
  /// Per-tenant cap on the queued portion alone. 0 = unlimited.
  int64_t tenant_max_queued = 0;
  /// Dequeue round-robin across tenants (each tenant's own jobs stay
  /// FIFO) instead of one global FIFO, so a burst from one tenant cannot
  /// starve the others' queued work.
  bool fair_dequeue = false;
  /// On dequeue, fail jobs fast with XQC0001 when the remaining
  /// end-to-end budget is below the EWMA of recent execution times
  /// (never burn a worker on a corpse). Requires
  /// deadline_includes_queue_wait.
  bool shed_on_dequeue = false;
  /// At admission, reject with XQC0007 when the predicted queue wait
  /// (queued jobs x EWMA / workers) already exceeds the request's
  /// deadline. Requires deadline_includes_queue_wait.
  bool predict_admission = false;
  /// EWMA smoothing factor for the execution-time estimate.
  double ewma_alpha = 0.2;
  /// Initial EWMA value in ms (0 = no estimate until the first completed
  /// execution). Lets tests and restarts seed the shedding predicate
  /// deterministically.
  double ewma_seed_ms = 0;

  // --- Prepared-plan cache (ROADMAP item 4). Results are identical with
  // --- the cache on or off; the cache only skips parse/normalize/compile
  // --- for repeated query texts (immutable PreparedQuery sharing).

  /// Max cached compiled plans. 0 disables the cache entirely — the
  /// ablation baseline (xqc_httpd --no-plan-cache): every text request
  /// compiles from scratch, byte-identical to the pre-cache service.
  size_t plan_cache_entries = 128;
  /// Byte budget for cached plans (estimates; see PlanCacheStats::bytes).
  /// 0 = unlimited. Exceeding either bound evicts least-recently-used
  /// entries.
  int64_t plan_cache_max_bytes = 64ll << 20;
  /// TTL for negative entries: a deterministic compile failure (parse /
  /// static / not-implemented error) is replayed from the cache for this
  /// long, so a hot bad query cannot compile-bomb the workers. Guard
  /// trips, cancellations, and I/O errors during compilation are never
  /// negative-cached. 0 disables negative caching.
  int64_t plan_cache_negative_ttl_ms = 2000;
};

struct QueryResponse {
  Status status;          // OK, a W3C error, a guard trip, or XQC0007
  std::string result;     // serialized result when status is OK
  ExecStats stats;        // from the final attempt
  int64_t queue_wait_ms = 0;
  int attempts = 1;       // 2 when the transient retry ran
  bool retried_transient = false;
};

struct QueryRequest {
  /// The query. `prepared` (a shared, immutable plan) takes precedence;
  /// otherwise `query_text` is compiled on the worker.
  std::string query_text;
  std::shared_ptr<const PreparedQuery> prepared;
  /// Traffic source for per-tenant quotas and fair dequeue. Empty = the
  /// anonymous default tenant (still a tenant under quotas/fairness).
  std::string tenant;
  /// Per-request limits; zero fields inherit ServiceOptions::default_limits.
  GuardLimits limits;
  /// Per-request streaming batch size (EngineOptions::batch_size); 0
  /// inherits the service's engine_options. Applies only when the service
  /// compiles `query_text` — a `prepared` plan's options were baked in at
  /// Prepare time.
  int batch_size = 0;
  /// Per-request intra-query parallelism (EngineOptions::parallelism); 0
  /// inherits the service's engine_options. Partition work runs on the
  /// process-wide TaskPool, shared across all concurrent queries; a busy
  /// pool degrades to serial on the worker, never to queueing. Applies
  /// only when the service compiles `query_text` (same rule as
  /// batch_size).
  int parallelism = 0;
  /// Optional extra bindings, run on the worker thread against the
  /// query-private context (after shared documents/variables are installed).
  std::function<void(DynamicContext*)> bind_context;
  /// Optional caller-held cancellation token. The service cancels it on
  /// shutdown; when absent the service makes a private one.
  CancellationToken cancel;
  /// Bypass the plan cache for this request: compile from scratch and do
  /// not publish the plan (per-request ablation / debugging).
  bool no_plan_cache = false;
  /// Deterministic guard fault injection (tests only).
  GuardFaultInjector fault_injector;
  /// Invoked exactly once when the response is ready — on the worker
  /// thread that finished it, or synchronously inside Submit for
  /// fast-fail paths — immediately BEFORE the future becomes ready. This
  /// is the event-loop integration hook (the HTTP front end uses it to
  /// wake its poll loop instead of blocking a thread per future).
  std::function<void(const QueryResponse&)> on_done;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());
  ~QueryService();  // calls Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Shared immutable state, installed into every query's context.
  /// Must be called before the first Submit.
  void RegisterDocument(const std::string& uri, NodePtr doc);
  void BindSharedVariable(Symbol name, Sequence value);
  void set_schema(const Schema* schema) { schema_ = schema; }

  /// Admits a query (possibly waiting admission_wait_ms for queue space)
  /// and returns a future for its response. Never throws; admission
  /// failures and post-shutdown submissions complete the future with
  /// XQC0007.
  std::future<QueryResponse> Submit(QueryRequest req);

  /// Convenience: Submit and wait.
  QueryResponse Run(QueryRequest req) { return Submit(std::move(req)).get(); }

  /// Cancels in-flight queries, fails queued ones with XQC0007, and joins
  /// the workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Monotonic service counters (all guarded; safe to read any time).
  struct Counters {
    int64_t submitted = 0;   // Submit calls
    int64_t rejected = 0;    // XQC0007/XQC0010 at admission or shutdown
    int64_t completed = 0;   // finished with OK status
    int64_t failed = 0;      // finished with any non-OK status
    int64_t retries = 0;     // transient retries performed
    int64_t cancelled_at_shutdown = 0;  // in-flight when Shutdown ran
    // Overload-resilience counters (all zero with the features off).
    int64_t shed_in_queue = 0;         // corpse jobs failed fast at dequeue
    int64_t rejected_predicted = 0;    // admission rejections by wait
                                       // prediction (XQC0007)
    int64_t tenant_rejected = 0;       // total XQC0010 rejections
    std::unordered_map<std::string, int64_t> tenant_rejections;  // per tenant
  };
  Counters counters() const;

  /// Current execution-time estimate in ms (0 until the first completed
  /// execution unless seeded); drives shedding and admission prediction.
  double ewma_exec_ms() const;

  /// Queries admitted but not yet dispatched to a worker. The HTTP front
  /// end uses this for accept-loop backpressure (stop accepting sockets
  /// while the admission queue is saturated).
  size_t queue_depth() const;

  /// Plan-cache counters and current occupancy (all zero with
  /// plan_cache_entries = 0).
  struct PlanCacheStats {
    int64_t hits = 0;           // served a cached compiled plan
    int64_t misses = 0;         // no usable entry; a compile was needed
    int64_t compiles = 0;       // compiles actually performed (successful)
    int64_t evictions = 0;      // entries dropped by the entry/byte bounds
    int64_t negative_hits = 0;  // compile errors replayed from the cache
    int64_t invalidations = 0;  // entries removed by InvalidatePlan[All]
    int64_t waiters_coalesced = 0;  // singleflight waits on a compile
    int64_t entries = 0;        // current cached entries (incl. negative)
    int64_t bytes = 0;          // current estimated cached-plan bytes
  };
  PlanCacheStats plan_cache_stats() const;

  /// Removes the cached plan(s) compiled from `query_text` (every
  /// baked-option variant, positive or negative). Returns the number of
  /// entries removed. In-flight executions keep their shared_ptr; the
  /// entry is simply unpublished.
  int64_t InvalidatePlan(const std::string& query_text);
  /// Empties the plan cache. Returns the number of entries removed.
  int64_t InvalidateAllPlans();

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    QueryRequest req;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    CancellationToken token;  // req.cancel, or a service-made one
  };

  /// Per-tenant admission/fairness bookkeeping (tracked only when quotas
  /// or fair dequeue are enabled; the map stays empty otherwise so the
  /// default configuration adds no per-submit work).
  struct TenantState {
    int64_t queued = 0;   // admitted, still in the queue
    int64_t running = 0;  // dequeued, executing on a worker
    std::deque<std::unique_ptr<Job>> fifo;  // fair_dequeue: this tenant's
                                            // own FIFO
  };

  /// One plan-cache slot: exactly one of {compiling, plan, error} is
  /// meaningful. Completed entries (plan or unexpired error) sit in the
  /// LRU; a compiling entry is pinned until its leader publishes.
  struct PlanEntry {
    bool compiling = false;
    std::shared_ptr<const PreparedQuery> plan;  // positive entry
    Status error;                               // negative entry
    std::chrono::steady_clock::time_point error_expires{};
    int64_t bytes = 0;
    std::list<std::string>::iterator lru_it{};  // valid when !compiling
  };

  void WorkerLoop(size_t worker_index);
  QueryResponse ExecuteJob(Job* job, uint64_t* jitter_state);
  /// One engine execution of the job under `limits`. Fills status/result/
  /// stats only.
  QueryResponse ExecuteOnce(Job* job, const GuardLimits& limits);
  /// Cache-or-compile: returns the shared plan for the job's query text
  /// (hit, negative replay, singleflight wait, or leader compile under
  /// `opts`). Takes and releases plan_mu_; compiles unlocked.
  Result<std::shared_ptr<const PreparedQuery>> GetOrCompilePlan(
      Job* job, const EngineOptions& opts);
  /// Fulfills the job's promise and fires its on_done hook (in that
  /// textual order; on_done runs just before set_value publishes).
  static void Complete(Job* job, QueryResponse resp);
  /// Drops `key`'s completed entry from the map/LRU/byte total. Callers
  /// hold plan_mu_.
  void ErasePlanLocked(const std::string& key);

  /// Whether per-tenant bookkeeping is on (any quota or fair dequeue).
  bool tenant_tracking() const {
    return options_.tenant_max_in_flight > 0 ||
           options_.tenant_max_queued > 0 || options_.fair_dequeue;
  }
  /// Queue primitives spanning the global FIFO and the fair per-tenant
  /// FIFOs. Callers hold mu_.
  size_t QueueSizeLocked() const;
  void EnqueueLocked(std::unique_ptr<Job> job);
  std::unique_ptr<Job> DequeueLocked();
  void DrainQueueLocked(std::deque<std::unique_ptr<Job>>* out);
  /// Folds a completed execution's duration into the EWMA (takes mu_).
  void UpdateEwma(int64_t exec_ms);

  ServiceOptions options_;
  Engine engine_;
  const Schema* schema_ = nullptr;
  std::vector<std::pair<std::string, NodePtr>> shared_docs_;
  std::vector<std::pair<Symbol, Sequence>> shared_vars_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // queue became non-empty / shutdown
  std::condition_variable space_cv_;  // queue gained space / shutdown
  std::condition_variable shutdown_cv_;  // interrupts retry backoff
  std::deque<std::unique_ptr<Job>> queue_;  // global FIFO (!fair_dequeue)
  std::unordered_map<std::string, TenantState> tenants_;
  std::deque<std::string> rr_;   // fair_dequeue: tenants awaiting service
  size_t fair_queued_ = 0;       // total jobs across tenant FIFOs
  double ewma_exec_ms_ = 0;      // 0 = no estimate yet
  std::vector<CancellationToken> active_;  // per-worker in-flight token
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  Counters counters_;

  /// Plan cache. Guarded by its own mutex (never held while compiling or
  /// while holding mu_) so a slow compile can't stall admission.
  mutable std::mutex plan_mu_;
  std::condition_variable plan_cv_;  // a compile finished (either way)
  std::unordered_map<std::string, PlanEntry> plans_;
  std::list<std::string> plan_lru_;  // front = most recently used
  int64_t plan_bytes_ = 0;
  PlanCacheStats plan_stats_;
};

/// The plan-cache key normalization: leading/trailing whitespace is
/// insignificant in XQuery, so spellings differing only there share one
/// cache entry. Interior whitespace is preserved — it can be significant
/// inside string literals and direct element constructors. Exposed for
/// tests.
std::string NormalizeQueryKeyText(const std::string& query_text);

/// The service's retry-backoff jitter: a wait uniformly distributed in
/// [base, 2*base) drawn from the xorshift64* stream `state`. Exposed so
/// tests can pin the jitter contract (range and determinism for a fixed
/// seed) against the exact sequence the workers use.
int64_t JitteredBackoffMs(int64_t base_ms, uint64_t* state);

}  // namespace xqc

#endif  // XQC_SERVICE_QUERY_SERVICE_H_
