// Deterministic I/O fault injection for the document store, extending the
// PR 2 guard-fault substrate (GuardFaultInjector) down to the filesystem
// boundary. Every DocumentStore failure path — transient open failures,
// truncated reads that poison a document, slow reads that let a deadline
// expire mid-load, flaky devices that recover after a few attempts — is
// drivable from tests without touching the real filesystem's behavior.
//
// An injector is installed on a DocumentStore (set_fault_injector) and
// consulted once per physical read attempt. It is safe to share across
// threads: the attempt counter is atomic, so concurrent singleflight
// leaders draw distinct attempt numbers.
#ifndef XQC_STORE_IO_FAULT_H_
#define XQC_STORE_IO_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace xqc {

enum class IoFaultMode : uint8_t {
  kNone,
  /// open() fails. `transient` picks the error class: transient failures
  /// are retried with backoff; permanent ones are negative-cached.
  kFailOpen,
  /// The read returns only the first half of the file — the parse fails
  /// and the document is quarantined.
  kShortRead,
  /// The read sleeps `delay_ms` in 1ms slices, checking the caller's guard
  /// between slices — a deadline/cancellation trips mid-load.
  kSlowRead,
  /// The first `fail_n` read attempts fail transiently, then reads
  /// succeed — the retry/backoff path recovers.
  kFlakyThenSucceed,
};

struct IoFaultInjector {
  IoFaultMode mode = IoFaultMode::kNone;
  /// kFailOpen: whether the injected failure is classified transient
  /// (retryable) or permanent (negative-cached).
  bool transient = true;
  /// kFlakyThenSucceed: attempts to fail before succeeding.
  /// kFailOpen: 0 = every attempt fails; otherwise only the first n.
  int64_t fail_n = 2;
  /// kSlowRead: total injected delay per read.
  int64_t delay_ms = 50;
  /// Physical read attempts observed (diagnostics; shared across threads).
  std::atomic<int64_t> attempts{0};
};

/// Parses a mode name ("none", "fail-open", "short-read", "slow-read",
/// "flaky") — used by the scripts/check.sh fault-matrix sweep, which
/// selects modes via the XQC_IO_FAULT_MODE environment variable.
inline bool IoFaultModeFromName(std::string_view name, IoFaultMode* out) {
  if (name == "none") *out = IoFaultMode::kNone;
  else if (name == "fail-open") *out = IoFaultMode::kFailOpen;
  else if (name == "short-read") *out = IoFaultMode::kShortRead;
  else if (name == "slow-read") *out = IoFaultMode::kSlowRead;
  else if (name == "flaky") *out = IoFaultMode::kFlakyThenSucceed;
  else return false;
  return true;
}

}  // namespace xqc

#endif  // XQC_STORE_IO_FAULT_H_
