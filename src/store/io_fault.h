// Deterministic I/O fault injection for the document store, extending the
// PR 2 guard-fault substrate (GuardFaultInjector) down to the filesystem
// boundary. Every DocumentStore failure path — transient open failures,
// truncated reads that poison a document, slow reads that let a deadline
// expire mid-load, flaky devices that recover after a few attempts, and
// (since the persistent snapshot tier) write-path failures and read-side
// bit-rot against snapshot files — is drivable from tests without touching
// the real filesystem's behavior.
//
// An injector is installed on a DocumentStore (set_fault_injector) and
// consulted once per physical read attempt (source documents) or once per
// snapshot-file operation. It is safe to share across threads: the
// counters are atomic, so concurrent singleflight leaders draw distinct
// attempt numbers.
#ifndef XQC_STORE_IO_FAULT_H_
#define XQC_STORE_IO_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace xqc {

enum class IoFaultMode : uint8_t {
  kNone,
  /// open() fails. `transient` picks the error class: transient failures
  /// are retried with backoff; permanent ones are negative-cached.
  kFailOpen,
  /// The read returns only the first half of the file — the parse fails
  /// and the document is quarantined.
  kShortRead,
  /// The read sleeps `delay_ms` in 1ms slices, checking the caller's guard
  /// between slices — a deadline/cancellation trips mid-load.
  kSlowRead,
  /// The first `fail_n` read attempts fail transiently, then reads
  /// succeed — the retry/backoff path recovers.
  kFlakyThenSucceed,

  // --- Snapshot-tier faults (src/store/snapshot.h). These target the
  // --- disk snapshot files only; source-document reads are unaffected.

  /// Snapshot write: only the first half of the serialized bytes reach the
  /// temp file before write() fails — the publish must not happen and the
  /// temp file must be cleaned up.
  kSnapshotShortWrite,
  /// Snapshot write: fsync() of the fully written temp file fails — an
  /// unsynced file must never be published.
  kSnapshotFsyncError,
  /// Snapshot write: the atomic rename of the temp file onto the final
  /// path fails.
  kSnapshotRenameError,
  /// Snapshot read: one byte of the snapshot is flipped after the read —
  /// the checksums must catch it and the file must be quarantined.
  kSnapshotBitFlip,
  /// Snapshot write: sleeps `delay_ms` in 1ms slices before the atomic
  /// rename — the window the crash-recovery harness (scripts/
  /// crash_snapshot.sh) kills the process inside to prove a torn write
  /// can never publish a partial file.
  kSnapshotSlowWrite,
};

struct IoFaultInjector {
  IoFaultMode mode = IoFaultMode::kNone;
  /// kFailOpen: whether the injected failure is classified transient
  /// (retryable) or permanent (negative-cached).
  bool transient = true;
  /// kFlakyThenSucceed: attempts to fail before succeeding.
  /// kFailOpen: 0 = every attempt fails; otherwise only the first n.
  int64_t fail_n = 2;
  /// kSlowRead: total injected delay per read.
  /// kSnapshotSlowWrite: delay before the publish rename.
  int64_t delay_ms = 50;
  /// Physical source-read attempts observed (diagnostics; shared across
  /// threads). Snapshot-file operations do not count here.
  std::atomic<int64_t> attempts{0};
  /// Snapshot-file operations (writes + reads) observed.
  std::atomic<int64_t> snapshot_ops{0};
};

/// Parses a mode name ("none", "fail-open", "short-read", "slow-read",
/// "flaky", "snap-short-write", "snap-fsync", "snap-rename",
/// "snap-bitflip", "snap-slow-write") — used by the scripts/check.sh fault
/// sweeps, which select modes via the XQC_IO_FAULT_MODE and
/// XQC_SNAP_FAULT_MODE environment variables.
inline bool IoFaultModeFromName(std::string_view name, IoFaultMode* out) {
  if (name == "none") *out = IoFaultMode::kNone;
  else if (name == "fail-open") *out = IoFaultMode::kFailOpen;
  else if (name == "short-read") *out = IoFaultMode::kShortRead;
  else if (name == "slow-read") *out = IoFaultMode::kSlowRead;
  else if (name == "flaky") *out = IoFaultMode::kFlakyThenSucceed;
  else if (name == "snap-short-write") *out = IoFaultMode::kSnapshotShortWrite;
  else if (name == "snap-fsync") *out = IoFaultMode::kSnapshotFsyncError;
  else if (name == "snap-rename") *out = IoFaultMode::kSnapshotRenameError;
  else if (name == "snap-bitflip") *out = IoFaultMode::kSnapshotBitFlip;
  else if (name == "snap-slow-write") *out = IoFaultMode::kSnapshotSlowWrite;
  else return false;
  return true;
}

}  // namespace xqc

#endif  // XQC_STORE_IO_FAULT_H_
