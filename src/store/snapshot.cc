#include "src/store/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/hash.h"

namespace xqc {

namespace {

constexpr char kHeaderMagic[8] = {'X', 'Q', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr char kFooterMagic[8] = {'X', 'Q', 'C', 'F', 'O', 'O', 'T', '1'};
constexpr size_t kHeaderSize = 64;
constexpr uint32_t kNumSections = 11;
constexpr size_t kSectionEntrySize = 24;  // offset u64 + bytes u64 + hash u64
constexpr size_t kFooterSize = 24;        // magic u64 + hash u64 + length u64

enum Section : uint32_t {
  kSecKinds = 0,
  kSecNames = 1,
  kSecTypes = 2,
  kSecStarts = 3,
  kSecEnds = 4,
  kSecAttrCounts = 5,
  kSecChildCounts = 6,
  kSecValueOffsets = 7,
  kSecValueBlob = 8,
  kSecDict = 9,
  kSecUri = 10,
};

// --- little-endian scalar append/read (the build targets are LE; a
// --- big-endian port would byte-swap here and bump the format version).

template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadScalar(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Interns a Symbol into the snapshot dictionary, returning its index.
/// Index 0 is reserved for the empty symbol.
uint32_t DictIndex(Symbol s, std::unordered_map<uint32_t, uint32_t>* by_id,
                   std::vector<std::string>* spellings) {
  if (s.empty()) return 0;
  auto [it, inserted] =
      by_id->emplace(s.id(), static_cast<uint32_t>(spellings->size()));
  if (inserted) spellings->push_back(s.str());
  return it->second;
}

struct Columns {
  std::string kinds;
  std::string names;
  std::string types;
  std::string starts;
  std::string ends;
  std::string attr_counts;
  std::string child_counts;
  std::string value_offsets;
  std::string value_blob;
  uint64_t node_count = 0;
};

/// Emits one node's record into the columns. `base` is the tree's interval
/// block base (root.start), subtracted so the stored intervals are
/// tree-relative.
void EmitNode(const Node& n, uint64_t base,
              std::unordered_map<uint32_t, uint32_t>* dict_ids,
              std::vector<std::string>* dict, Columns* c) {
  c->kinds.push_back(static_cast<char>(n.kind));
  AppendScalar<uint32_t>(&c->names, DictIndex(n.name, dict_ids, dict));
  AppendScalar<uint32_t>(&c->types,
                         DictIndex(n.type_annotation, dict_ids, dict));
  AppendScalar<uint64_t>(&c->starts, n.start - base);
  AppendScalar<uint64_t>(&c->ends, n.end - base);
  AppendScalar<uint32_t>(&c->attr_counts,
                         static_cast<uint32_t>(n.attributes.size()));
  AppendScalar<uint32_t>(&c->child_counts,
                         static_cast<uint32_t>(n.children.size()));
  AppendScalar<uint64_t>(&c->value_offsets, c->value_blob.size());
  c->value_blob.append(n.value);
  c->node_count++;
}

/// Walks the tree in FinalizeTree's preorder (node, attributes, children)
/// with an explicit stack, emitting columnar records.
void EmitTree(const Node& root, uint64_t base,
              std::unordered_map<uint32_t, uint32_t>* dict_ids,
              std::vector<std::string>* dict, Columns* c) {
  struct Frame {
    const Node* node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  EmitNode(root, base, dict_ids, dict, c);
  for (const NodePtr& a : root.attributes) EmitNode(*a, base, dict_ids, dict, c);
  stack.push_back({&root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child >= f.node->children.size()) {
      stack.pop_back();
      continue;
    }
    const Node* child = f.node->children[f.next_child++].get();
    EmitNode(*child, base, dict_ids, dict, c);
    for (const NodePtr& a : child->attributes) {
      EmitNode(*a, base, dict_ids, dict, c);
    }
    stack.push_back({child});
  }
}

struct SectionEntry {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t hash = 0;
};

/// Best-effort directory fsync so the published rename itself is durable.
void SyncDirectoryOf(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::atomic<uint64_t> g_tmp_seq{0};

SnapshotLoadResult Fail(SnapshotLoadOutcome outcome, std::string detail,
                        int64_t bytes_read) {
  SnapshotLoadResult r;
  r.outcome = outcome;
  r.detail = std::move(detail);
  r.bytes_read = bytes_read;
  return r;
}

}  // namespace

std::string SnapshotFileName(const std::string& normalized_uri) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Hash64(normalized_uri)));
  // A sanitized stem keeps the directory browsable; the hash is what makes
  // the name unique (same-stem URIs in different directories don't clash).
  size_t slash = normalized_uri.rfind('/');
  std::string stem = slash == std::string::npos
                         ? normalized_uri
                         : normalized_uri.substr(slash + 1);
  std::string safe;
  for (char ch : stem) {
    if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
        (ch >= '0' && ch <= '9') || ch == '-' || ch == '_' || ch == '.') {
      safe.push_back(ch);
    } else {
      safe.push_back('_');
    }
    if (safe.size() >= 40) break;
  }
  if (safe.empty()) safe = "doc";
  return std::string(hex) + "-" + safe + ".xqsnap";
}

Status WriteSnapshot(const std::string& snap_path, const Node& root,
                     const SnapshotSource& source, IoFaultInjector* injector,
                     int64_t* bytes_written) {
  if (root.start == 0) {
    return Status::Internal("snapshot of an unfinalized tree: " + source.uri);
  }

  // --- Serialize everything into memory first; the file is all-or-nothing.
  Columns cols;
  std::unordered_map<uint32_t, uint32_t> dict_ids;
  std::vector<std::string> dict;
  dict.push_back("");  // index 0 = the empty symbol
  EmitTree(root, root.start, &dict_ids, &dict, &cols);
  AppendScalar<uint64_t>(&cols.value_offsets, cols.value_blob.size());

  std::string dict_bytes;
  for (const std::string& s : dict) {
    AppendScalar<uint32_t>(&dict_bytes, static_cast<uint32_t>(s.size()));
    dict_bytes.append(s);
  }

  const std::string* payloads[kNumSections];
  payloads[kSecKinds] = &cols.kinds;
  payloads[kSecNames] = &cols.names;
  payloads[kSecTypes] = &cols.types;
  payloads[kSecStarts] = &cols.starts;
  payloads[kSecEnds] = &cols.ends;
  payloads[kSecAttrCounts] = &cols.attr_counts;
  payloads[kSecChildCounts] = &cols.child_counts;
  payloads[kSecValueOffsets] = &cols.value_offsets;
  payloads[kSecValueBlob] = &cols.value_blob;
  payloads[kSecDict] = &dict_bytes;
  payloads[kSecUri] = &source.uri;

  std::string file;
  file.reserve(kHeaderSize + kNumSections * kSectionEntrySize +
               cols.kinds.size() * 34 + cols.value_blob.size() +
               dict_bytes.size() + source.uri.size() + kFooterSize);
  file.append(kHeaderMagic, sizeof(kHeaderMagic));
  AppendScalar<uint32_t>(&file, kSnapshotFormatVersion);
  AppendScalar<uint32_t>(&file, kNumSections);
  AppendScalar<uint64_t>(&file, cols.node_count);
  AppendScalar<uint64_t>(&file, static_cast<uint64_t>(dict.size()));
  AppendScalar<int64_t>(&file, source.size);
  AppendScalar<uint64_t>(&file, source.content_hash);
  AppendScalar<uint64_t>(&file, Hash64(source.uri));
  AppendScalar<uint64_t>(&file, Hash64(file.data(), file.size()));

  uint64_t offset = kHeaderSize + kNumSections * kSectionEntrySize;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    AppendScalar<uint64_t>(&file, offset);
    AppendScalar<uint64_t>(&file, payloads[s]->size());
    AppendScalar<uint64_t>(&file, Hash64(*payloads[s]));
    offset += payloads[s]->size();
  }
  for (uint32_t s = 0; s < kNumSections; ++s) file.append(*payloads[s]);

  // Footer last: its presence proves every byte before it was written. The
  // whole-file hash covers exactly [0, footer start), matching the loader.
  const uint64_t body_hash = Hash64(file.data(), file.size());
  file.append(kFooterMagic, sizeof(kFooterMagic));
  AppendScalar<uint64_t>(&file, body_hash);
  AppendScalar<uint64_t>(&file, file.size() + 8);  // total incl. this field

  // --- Atomic publish: unique temp sibling -> write -> fsync -> rename.
  if (injector != nullptr) {
    injector->snapshot_ops.fetch_add(1, std::memory_order_relaxed);
  }
  const std::string tmp =
      snap_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(g_tmp_seq.fetch_add(1, std::memory_order_relaxed));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create snapshot temp file '" + tmp +
                           "': " + std::strerror(errno));
  }
  auto abort_write = [&](std::string msg) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError(std::move(msg));
  };

  size_t to_write = file.size();
  if (injector != nullptr &&
      injector->mode == IoFaultMode::kSnapshotShortWrite) {
    to_write = file.size() / 2;  // the torn half actually lands on disk
  }
  size_t off = 0;
  while (off < to_write) {
    ssize_t n = ::write(fd, file.data() + off, to_write - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return abort_write("error writing snapshot '" + tmp +
                         "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (injector != nullptr &&
      injector->mode == IoFaultMode::kSnapshotShortWrite) {
    return abort_write("injected short write for snapshot '" + snap_path +
                       "'");
  }
  if (injector != nullptr &&
      injector->mode == IoFaultMode::kSnapshotFsyncError) {
    return abort_write("injected fsync failure for snapshot '" + snap_path +
                       "'");
  }
  if (::fsync(fd) != 0) {
    return abort_write("fsync of snapshot '" + tmp +
                       "' failed: " + std::strerror(errno));
  }
  ::close(fd);

  if (injector != nullptr &&
      injector->mode == IoFaultMode::kSnapshotSlowWrite) {
    // The crash-harness window: the temp file is complete but unpublished.
    for (int64_t i = 0; i < injector->delay_ms; ++i) SleepMs(1);
  }
  if (injector != nullptr &&
      injector->mode == IoFaultMode::kSnapshotRenameError) {
    ::unlink(tmp.c_str());
    return Status::IOError("injected rename failure for snapshot '" +
                           snap_path + "'");
  }
  if (::rename(tmp.c_str(), snap_path.c_str()) != 0) {
    int e = errno;
    ::unlink(tmp.c_str());
    return Status::IOError("cannot publish snapshot '" + snap_path +
                           "': " + std::strerror(e));
  }
  SyncDirectoryOf(snap_path);
  if (bytes_written != nullptr) {
    *bytes_written = static_cast<int64_t>(file.size());
  }
  return Status::OK();
}

SnapshotLoadResult LoadSnapshot(const std::string& snap_path,
                                const SnapshotSource* expect,
                                QueryGuard* guard,
                                IoFaultInjector* injector) {
  if (guard == nullptr) guard = UnlimitedGuard();

  int fd = ::open(snap_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT || errno == ENOTDIR) {
      return Fail(SnapshotLoadOutcome::kMissing, "no snapshot", 0);
    }
    return Fail(SnapshotLoadOutcome::kIoError,
                std::string("open failed: ") + std::strerror(errno), 0);
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0 || !S_ISREG(sb.st_mode)) {
    ::close(fd);
    return Fail(SnapshotLoadOutcome::kIoError, "not a regular file", 0);
  }
  const size_t size = static_cast<size_t>(sb.st_size);
  if (injector != nullptr) {
    injector->snapshot_ops.fetch_add(1, std::memory_order_relaxed);
  }

  const int64_t header_cost =
      static_cast<int64_t>(kHeaderSize + kFooterSize);
  if (size < kHeaderSize + kNumSections * kSectionEntrySize + kFooterSize) {
    ::close(fd);
    return Fail(SnapshotLoadOutcome::kCorrupt,
                "truncated: " + std::to_string(size) + " bytes", header_cost);
  }

  // mmap-or-read. The stale/version fast paths below only touch the header
  // and footer pages; with mmap the untouched sections are never read off
  // disk. The bit-flip injection needs writable bytes, so it (and any mmap
  // failure) falls back to a plain read.
  const bool flip = injector != nullptr &&
                    injector->mode == IoFaultMode::kSnapshotBitFlip;
  std::string owned;
  const char* data = nullptr;
  void* mapped = nullptr;
  if (!flip) {
    mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) data = static_cast<const char*>(mapped);
    else mapped = nullptr;
  }
  if (data == nullptr) {
    owned.resize(size);
    size_t off = 0;
    while (off < size) {
      ssize_t n = ::read(fd, owned.data() + off, size - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return Fail(SnapshotLoadOutcome::kIoError,
                    std::string("read failed: ") + std::strerror(errno),
                    static_cast<int64_t>(off));
      }
      off += static_cast<size_t>(n);
    }
    if (flip) owned[size / 2] ^= 0x40;  // one bit of rot, mid-file
    data = owned.data();
  }
  ::close(fd);
  struct Unmapper {
    void* p;
    size_t n;
    ~Unmapper() {
      if (p != nullptr) ::munmap(p, n);
    }
  } unmapper{mapped, size};

  // --- Layer 1: header + footer (cheap rejects; no section is read).
  if (std::memcmp(data, kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Fail(SnapshotLoadOutcome::kCorrupt, "bad magic", header_cost);
  }
  const uint32_t version = ReadScalar<uint32_t>(data + 8);
  if (version != kSnapshotFormatVersion) {
    return Fail(SnapshotLoadOutcome::kVersionSkew,
                "format version " + std::to_string(version) + " (expected " +
                    std::to_string(kSnapshotFormatVersion) + ")",
                header_cost);
  }
  const uint32_t section_count = ReadScalar<uint32_t>(data + 12);
  const uint64_t node_count = ReadScalar<uint64_t>(data + 16);
  const uint64_t dict_count = ReadScalar<uint64_t>(data + 24);
  const int64_t source_size = ReadScalar<int64_t>(data + 32);
  const uint64_t content_hash = ReadScalar<uint64_t>(data + 40);
  const uint64_t uri_hash = ReadScalar<uint64_t>(data + 48);
  const uint64_t header_hash = ReadScalar<uint64_t>(data + 56);
  if (header_hash != Hash64(data, 56)) {
    return Fail(SnapshotLoadOutcome::kCorrupt, "header checksum mismatch",
                header_cost);
  }
  if (section_count != kNumSections) {
    return Fail(SnapshotLoadOutcome::kCorrupt,
                "section count " + std::to_string(section_count), header_cost);
  }
  const char* foot = data + size - kFooterSize;
  if (std::memcmp(foot, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Fail(SnapshotLoadOutcome::kCorrupt,
                "missing footer (torn or truncated write)", header_cost);
  }
  if (ReadScalar<uint64_t>(foot + 16) != size) {
    return Fail(SnapshotLoadOutcome::kCorrupt, "footer length mismatch",
                header_cost);
  }

  // --- Layer 2: source freshness, from the header alone.
  if (expect != nullptr) {
    if (content_hash != expect->content_hash || source_size != expect->size ||
        uri_hash != Hash64(expect->uri)) {
      return Fail(SnapshotLoadOutcome::kStale,
                  "source fingerprint mismatch (document changed)",
                  header_cost);
    }
  }

  // --- Layer 3: the snapshot will be used — verify every checksum.
  if (ReadScalar<uint64_t>(foot + 8) != Hash64(data, size - kFooterSize)) {
    return Fail(SnapshotLoadOutcome::kCorrupt,
                "whole-file checksum mismatch (bit rot)",
                static_cast<int64_t>(size));
  }
  SectionEntry sections[kNumSections];
  const char* table = data + kHeaderSize;
  const uint64_t payload_base = kHeaderSize + kNumSections * kSectionEntrySize;
  const uint64_t payload_end = size - kFooterSize;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    const char* e = table + s * kSectionEntrySize;
    sections[s].offset = ReadScalar<uint64_t>(e);
    sections[s].bytes = ReadScalar<uint64_t>(e + 8);
    sections[s].hash = ReadScalar<uint64_t>(e + 16);
    if (sections[s].offset < payload_base ||
        sections[s].offset > payload_end ||
        sections[s].bytes > payload_end - sections[s].offset) {
      return Fail(SnapshotLoadOutcome::kCorrupt,
                  "section " + std::to_string(s) + " out of bounds",
                  static_cast<int64_t>(size));
    }
    if (sections[s].hash !=
        Hash64(data + sections[s].offset, sections[s].bytes)) {
      return Fail(SnapshotLoadOutcome::kCorrupt,
                  "section " + std::to_string(s) + " checksum mismatch",
                  static_cast<int64_t>(size));
    }
  }
  auto corrupt = [&](std::string why) {
    return Fail(SnapshotLoadOutcome::kCorrupt, std::move(why),
                static_cast<int64_t>(size));
  };
  auto expect_bytes = [&](Section s, uint64_t want) {
    return sections[s].bytes == want;
  };
  if (node_count == 0) return corrupt("empty tree");
  if (dict_count == 0 || dict_count > (1ull << 31)) {
    return corrupt("implausible dictionary size");
  }
  if (!expect_bytes(kSecKinds, node_count) ||
      !expect_bytes(kSecNames, node_count * 4) ||
      !expect_bytes(kSecTypes, node_count * 4) ||
      !expect_bytes(kSecStarts, node_count * 8) ||
      !expect_bytes(kSecEnds, node_count * 8) ||
      !expect_bytes(kSecAttrCounts, node_count * 4) ||
      !expect_bytes(kSecChildCounts, node_count * 4) ||
      !expect_bytes(kSecValueOffsets, (node_count + 1) * 8)) {
    return corrupt("column size inconsistent with node count");
  }
  if (expect != nullptr) {
    // uri_hash already matched; the byte compare closes the (theoretical)
    // hash-collision hole between two URIs mapped to one snapshot name.
    if (sections[kSecUri].bytes != expect->uri.size() ||
        std::memcmp(data + sections[kSecUri].offset, expect->uri.data(),
                    expect->uri.size()) != 0) {
      return Fail(SnapshotLoadOutcome::kStale, "snapshot is for another URI",
                  static_cast<int64_t>(size));
    }
  }

  // --- Dictionary: bridge stored spellings to this process's interner.
  std::vector<Symbol> symbols;
  symbols.reserve(dict_count);
  {
    const char* p = data + sections[kSecDict].offset;
    const char* dict_end = p + sections[kSecDict].bytes;
    for (uint64_t i = 0; i < dict_count; ++i) {
      if (p + 4 > dict_end) return corrupt("dictionary truncated");
      uint32_t len = ReadScalar<uint32_t>(p);
      p += 4;
      if (static_cast<uint64_t>(dict_end - p) < len) {
        return corrupt("dictionary entry out of bounds");
      }
      if (i == 0) {
        if (len != 0) return corrupt("dictionary slot 0 not empty");
        symbols.push_back(Symbol());
      } else {
        symbols.push_back(Symbol(std::string_view(p, len)));
      }
      p += len;
    }
    if (p != dict_end) return corrupt("dictionary trailing bytes");
  }

  // --- Columns.
  const unsigned char* kinds = reinterpret_cast<const unsigned char*>(
      data + sections[kSecKinds].offset);
  const char* names = data + sections[kSecNames].offset;
  const char* types = data + sections[kSecTypes].offset;
  const char* starts = data + sections[kSecStarts].offset;
  const char* ends = data + sections[kSecEnds].offset;
  const char* attr_counts = data + sections[kSecAttrCounts].offset;
  const char* child_counts = data + sections[kSecChildCounts].offset;
  const char* value_offsets = data + sections[kSecValueOffsets].offset;
  const char* blob = data + sections[kSecValueBlob].offset;
  const uint64_t blob_bytes = sections[kSecValueBlob].bytes;

  auto rel_end = [&](uint64_t i) { return ReadScalar<uint64_t>(ends + i * 8); };
  auto vo = [&](uint64_t i) {
    return ReadScalar<uint64_t>(value_offsets + i * 8);
  };
  if (vo(0) != 0 || vo(node_count) != blob_bytes) {
    return corrupt("value offsets don't span the blob");
  }
  if (rel_end(0) != node_count - 1) return corrupt("root interval mismatch");

  // --- Rebuild, charging the caller's guard like a parse would.
  const uint64_t base = AllocateOrderBlock(node_count);
  SnapshotLoadResult result;
  result.bytes_read = static_cast<int64_t>(size);

  Status st = guard->AccountMemory(static_cast<int64_t>(blob_bytes));
  if (!st.ok()) {
    result.outcome = SnapshotLoadOutcome::kGuardTrip;
    result.status = st;
    return result;
  }

  struct Frame {
    Node* node;
    uint64_t idx;  // the node's own record index (for the end check)
    uint32_t attrs_left;
    uint32_t kids_left;
  };
  auto make_node = [&](uint64_t i) -> NodePtr {
    NodePtr n = std::make_shared<Node>();
    uint8_t kind = kinds[i];
    n->kind = static_cast<NodeKind>(kind);
    uint32_t name_ix = ReadScalar<uint32_t>(names + i * 4);
    uint32_t type_ix = ReadScalar<uint32_t>(types + i * 4);
    if (kind > static_cast<uint8_t>(NodeKind::kPI) || name_ix >= dict_count ||
        type_ix >= dict_count || ReadScalar<uint64_t>(starts + i * 8) != i ||
        rel_end(i) < i || rel_end(i) >= node_count || vo(i) > vo(i + 1) ||
        vo(i + 1) > blob_bytes) {
      return nullptr;
    }
    n->name = symbols[name_ix];
    n->type_annotation = symbols[type_ix];
    n->value.assign(blob + vo(i), vo(i + 1) - vo(i));
    n->start = base + i;
    n->end = base + rel_end(i);
    return n;
  };

  NodePtr root = make_node(0);
  if (root == nullptr) return corrupt("invalid root record");
  std::vector<Frame> stack;
  stack.push_back(Frame{root.get(), 0, ReadScalar<uint32_t>(attr_counts),
                        ReadScalar<uint32_t>(child_counts)});
  uint64_t idx = 1;
  constexpr uint64_t kGuardChunk = 1024;
  uint64_t accounted = 1;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.attrs_left == 0 && top.kids_left == 0) {
      // The subtree is complete: its "post" must point at the last record
      // consumed inside it. This pins every interval to the real shape.
      if (rel_end(top.idx) != idx - 1) return corrupt("interval mismatch");
      stack.pop_back();
      continue;
    }
    if (idx >= node_count) return corrupt("node records exhausted early");
    if (idx - accounted >= kGuardChunk) {
      st = guard->AccountNodes(static_cast<int64_t>(idx - accounted));
      if (st.ok()) st = guard->CheckNow();
      if (!st.ok()) {
        result.outcome = SnapshotLoadOutcome::kGuardTrip;
        result.status = st;
        return result;
      }
      accounted = idx;
    }
    NodePtr n = make_node(idx);
    if (n == nullptr) return corrupt("invalid node record " +
                                     std::to_string(idx));
    uint32_t n_attrs = ReadScalar<uint32_t>(attr_counts + idx * 4);
    uint32_t n_kids = ReadScalar<uint32_t>(child_counts + idx * 4);
    if (top.attrs_left > 0) {
      // Attributes are numbered directly after their element, are leaves,
      // and carry single-id intervals.
      if (n->kind != NodeKind::kAttribute || n_attrs != 0 || n_kids != 0 ||
          rel_end(idx) != idx) {
        return corrupt("invalid attribute record " + std::to_string(idx));
      }
      n->parent = top.node;
      top.node->attributes.push_back(std::move(n));
      top.attrs_left--;
      idx++;
      continue;
    }
    if (n->kind == NodeKind::kAttribute) {
      return corrupt("attribute record in child position");
    }
    n->parent = top.node;
    Node* raw = n.get();
    top.node->children.push_back(std::move(n));
    top.kids_left--;
    uint64_t my_idx = idx;
    idx++;
    stack.push_back(Frame{raw, my_idx, n_attrs, n_kids});
    // Attributes of the just-pushed node come first in preorder; the loop
    // consumes them from its frame on the next iterations.
  }
  if (idx != node_count) return corrupt("trailing node records");
  st = guard->AccountNodes(static_cast<int64_t>(idx - accounted));
  if (st.ok()) st = guard->CheckNow();
  if (!st.ok()) {
    result.outcome = SnapshotLoadOutcome::kGuardTrip;
    result.status = st;
    return result;
  }

  result.outcome = SnapshotLoadOutcome::kLoaded;
  result.doc = std::move(root);
  return result;
}

bool QuarantineSnapshotFile(const std::string& snap_path) {
  const std::string aside = snap_path + ".corrupt";
  if (::rename(snap_path.c_str(), aside.c_str()) == 0) return true;
  ::unlink(snap_path.c_str());
  return false;
}

int SweepOrphanSnapshotTmps(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  int removed = 0;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.find(".xqsnap.tmp.") == std::string::npos) continue;
    if (::unlink((dir + "/" + name).c_str()) == 0) removed++;
  }
  ::closedir(d);
  return removed;
}

}  // namespace xqc
