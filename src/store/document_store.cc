#include "src/store/document_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "src/base/hash.h"
#include "src/base/strutil.h"
#include "src/store/snapshot.h"
#include "src/xml/xml_parser.h"

namespace xqc {

namespace {

/// Whether an errno from open/read is worth retrying. Everything else
/// (ENOENT, ENOTDIR, EACCES, EISDIR, ...) is a permanent verdict for the
/// current file state and is negative-cached instead.
bool ErrnoIsTransient(int e) {
  return e == EINTR || e == EAGAIN || e == EWOULDBLOCK || e == EIO ||
         e == EMFILE || e == ENFILE || e == ENOMEM || e == EBUSY;
}

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Plain whole-file read for content rechecks (no fault injection: the
/// injected source faults target the load path, and a failed recheck read
/// already degrades into that path).
bool ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat sb;
  if (::fstat(fd, &sb) != 0 || !S_ISREG(sb.st_mode)) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(sb.st_size));
  size_t off = 0;
  while (off < out->size()) {
    ssize_t n = ::read(fd, out->data() + off, out->size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  out->resize(off);
  return true;
}

/// Minimal '*' glob over one path segment ('*' matches any run of
/// characters, including none; no other metacharacters).
bool GlobMatch(const char* pattern, const char* s) {
  const char* star = nullptr;
  const char* backtrack = nullptr;
  while (*s != '\0') {
    if (*pattern == *s) {
      pattern++;
      s++;
    } else if (*pattern == '*') {
      star = pattern++;
      backtrack = s;
    } else if (star != nullptr) {
      pattern = star + 1;
      s = ++backtrack;
    } else {
      return false;
    }
  }
  while (*pattern == '*') pattern++;
  return *pattern == '\0';
}

}  // namespace

Result<std::vector<std::string>> ListCollectionMembers(
    const std::string& raw_uri) {
  const std::string uri = NormalizeDocUri(raw_uri);
  if (uri.empty()) {
    return Status::IOError("fn:collection: no default collection is defined");
  }
  if (uri.find("://") != std::string::npos) {
    return Status::IOError("cannot resolve collection URI '" + uri +
                           "': unsupported scheme");
  }
  // A '*' in the last path segment is a basename glob; otherwise the URI
  // must name a directory, whose "*.xml" entries are the members.
  std::string dir = uri;
  std::string pattern;
  const size_t slash = uri.rfind('/');
  const std::string base =
      slash == std::string::npos ? uri : uri.substr(slash + 1);
  if (base.find('*') != std::string::npos) {
    pattern = base;
    if (slash == std::string::npos) {
      dir = ".";
    } else {
      dir = slash == 0 ? "/" : uri.substr(0, slash);
    }
  } else {
    struct stat sb;
    if (::stat(uri.c_str(), &sb) != 0) {
      return Status::IOError("cannot resolve collection URI '" + uri +
                             "': " + std::strerror(errno));
    }
    if (S_ISREG(sb.st_mode)) {
      return Status::WithCode(
          StatusKind::kXQueryError, "FODC0004",
          "invalid collection URI '" + uri +
              "': names a document, not a collection (use fn:doc, or a "
              "directory / '*' glob)");
    }
    if (!S_ISDIR(sb.st_mode)) {
      return Status::IOError("cannot resolve collection URI '" + uri +
                             "': not a directory");
    }
    pattern = "*.xml";
  }

  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot enumerate collection '" + uri +
                           "': " + std::strerror(errno));
  }
  std::vector<std::string> members;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    if (!GlobMatch(pattern.c_str(), name.c_str())) continue;
    const std::string path = dir == "/" ? "/" + name : dir + "/" + name;
    struct stat sb;
    if (::stat(path.c_str(), &sb) != 0 || !S_ISREG(sb.st_mode)) continue;
    members.push_back(NormalizeDocUri(path));
  }
  ::closedir(d);
  // Sorted member URIs define the collection's stable ordinal order: the
  // cross-document order every execution (serial or parallel, warm or cold
  // cache) must agree on. readdir order is filesystem-dependent, so sort.
  std::sort(members.begin(), members.end());
  return members;
}

Result<std::vector<std::string>> DocumentStore::ListCollection(
    const std::string& uri, DocStoreStats* stats) {
  IoFaultInjector* inj = fault_injector_.load(std::memory_order_acquire);
  if (inj != nullptr && inj->mode == IoFaultMode::kFailOpen) {
    const int64_t attempt_no =
        inj->attempts.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inj->fail_n <= 0 || attempt_no <= inj->fail_n) {
      // Enumeration is not retried (there is no partial progress to
      // protect), so an injected open failure surfaces directly as the
      // unresolvable-collection verdict.
      return Status::IOError("injected open failure enumerating collection '" +
                             uri + "'");
    }
  }
  Result<std::vector<std::string>> r = ListCollectionMembers(uri);
  if (r.ok()) {
    Bump(stats, &DocStoreStats::collections_resolved);
    CountGlobal(&DocStoreStats::collections_resolved);
  }
  return r;
}

std::string NormalizeDocUri(const std::string& raw_uri) {
  std::string uri = raw_uri;
  if (uri.rfind("file:", 0) == 0) {
    // A file: URI names a local path: strip the scheme (accepting an empty
    // or "localhost" authority) and percent-decode, so "file:///a%20b.xml"
    // and "/a b.xml" land on one cache entry instead of aliasing.
    std::string rest = uri.substr(5);
    if (rest.rfind("//", 0) == 0) {
      size_t slash = rest.find('/', 2);
      if (slash == std::string::npos) return raw_uri;
      std::string authority = rest.substr(2, slash - 2);
      if (!authority.empty() && authority != "localhost") return raw_uri;
      rest = rest.substr(slash);
    }
    uri = PercentDecode(rest);
  }
  if (uri.empty() || uri.find("://") != std::string::npos) return uri;
  const bool absolute = uri[0] == '/';
  std::vector<std::string> parts;
  size_t i = 0;
  while (i <= uri.size()) {
    size_t j = uri.find('/', i);
    if (j == std::string::npos) j = uri.size();
    std::string seg = uri.substr(i, j - i);
    i = j + 1;
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (!parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else if (!absolute) {
        // A relative path may legitimately start above its base directory.
        parts.push_back("..");
      }
      // Absolute paths can't climb above "/": drop the segment.
      continue;
    }
    parts.push_back(std::move(seg));
  }
  std::string out;
  if (absolute) out += '/';
  for (size_t k = 0; k < parts.size(); ++k) {
    if (k > 0) out += '/';
    out += parts[k];
  }
  if (out.empty()) out = absolute ? "/" : ".";
  return out;
}

DocumentStore::DocumentStore(DocumentStoreOptions options)
    : options_(options),
      max_bytes_(options.max_bytes),
      breaker_threshold_(options.breaker_threshold),
      brownout_(options.brownout),
      jitter_state_(options.jitter_seed) {
  if (!options.snapshot_dir.empty()) set_snapshot_dir(options.snapshot_dir);
}

DocumentStore::~DocumentStore() = default;

DocumentStore* DocumentStore::Global() {
  // Leaked deliberately: documents may be referenced by results that
  // outlive static destruction order.
  static DocumentStore* g = new DocumentStore();
  return g;
}

bool DocumentStore::StatFile(const std::string& path, Fingerprint* fp) {
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0 || !S_ISREG(sb.st_mode)) return false;
  fp->inode = static_cast<uint64_t>(sb.st_ino);
  fp->size = static_cast<int64_t>(sb.st_size);
  fp->mtime_sec = static_cast<int64_t>(sb.st_mtim.tv_sec);
  fp->mtime_nsec = static_cast<int64_t>(sb.st_mtim.tv_nsec);
  return true;
}

uint64_t DocumentStore::NextRand() {
  // splitmix64 over an atomically advanced state: contention-free and
  // deterministic for a fixed seed and call order.
  uint64_t x = jitter_state_.fetch_add(0x9e3779b97f4a7c15ull,
                                       std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void DocumentStore::CountGlobal(int64_t DocStoreStats::*field, int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.*field += n;
}

Result<NodePtr> DocumentStore::Load(const std::string& raw_uri,
                                    const LoadOptions& opts) {
  const std::string uri = NormalizeDocUri(raw_uri);
  QueryGuard* guard = opts.guard != nullptr ? opts.guard : UnlimitedGuard();
  if (opts.performed_parse != nullptr) *opts.performed_parse = false;

  for (;;) {
    std::shared_ptr<InFlight> slot;
    bool leader = false;
    bool probe = false;  // this load is the breaker's single half-open probe
    NodePtr recheck_doc;       // fingerprint-valid hit inside the recheck
    uint64_t recheck_hash = 0; // window: verify content outside the lock
    bool breaker_failed = false;
    Status breaker_status;
    std::string disk_brownout_path;  // breaker open: try the snapshot tier
    {
      std::unique_lock<std::mutex> lock(mu_);

      auto q = quarantine_.find(uri);
      if (q != quarantine_.end()) {
        Fingerprint fp;
        if (StatFile(uri, &fp) && fp == q->second.fp) {
          totals_.quarantine_hits++;
          Bump(opts.stats, &DocStoreStats::quarantine_hits);
          return Status::WithCode(
              q->second.status.kind(), kStoreQuarantinedCode,
              "quarantined document '" + uri +
                  "' (invalidate or fix the file to retry): " +
                  q->second.status.ToString());
        }
        // The file changed (or vanished): the cached verdict is stale.
        quarantine_.erase(q);
      }

      auto neg = negative_.find(uri);
      if (neg != negative_.end()) {
        if (std::chrono::steady_clock::now() < neg->second.expires) {
          totals_.negative_hits++;
          Bump(opts.stats, &DocStoreStats::negative_hits);
          return neg->second.status;
        }
        negative_.erase(neg);
      }

      auto c = cache_.find(uri);
      bool have_stale = false;
      if (c != cache_.end()) {
        Fingerprint fp;
        if (!opts.force_fresh && StatFile(uri, &fp) && fp == c->second->fp) {
          const int64_t window = options_.content_recheck_window_ms;
          if (window > 0 &&
              std::chrono::steady_clock::now() - c->second->loaded_at <
                  std::chrono::milliseconds(window)) {
            // The entry is young enough that a same-size rewrite could be
            // hiding inside the mtime granularity: verify the content hash
            // outside the lock before serving.
            recheck_doc = c->second->doc;
            recheck_hash = c->second->content_hash;
          } else {
            lru_.splice(lru_.begin(), lru_, c->second);
            totals_.hits++;
            Bump(opts.stats, &DocStoreStats::hits);
            return c->second->doc;
          }
        }
        // Stale (or currently unstattable). Deferred-dropped below: if the
        // prefix's breaker is open and brownout is on, this is exactly the
        // tree we degrade onto instead of failing.
        have_stale = true;
      }

      auto f = recheck_doc != nullptr ? inflight_.end() : inflight_.find(uri);
      if (recheck_doc != nullptr) {
        // Fall through to the unlocked recheck below.
      } else if (f != inflight_.end()) {
        // Another query is already performing this load; joining its wait
        // causes no new I/O, so the breaker is not consulted.
        slot = f->second;
      } else {
        switch (BreakerAdmitLocked(BreakerPrefix(uri))) {
          case BreakerVerdict::kOpen:
            if (brownout_.load(std::memory_order_relaxed) && have_stale) {
              lru_.splice(lru_.begin(), lru_, c->second);
              totals_.brownout_serves++;
              Bump(opts.stats, &DocStoreStats::brownout_serves);
              return c->second->doc;
            }
            // No stale tree in memory. The disk tier may still hold a
            // rebuildable snapshot — attempted outside the lock.
            if (brownout_.load(std::memory_order_relaxed) &&
                opts.use_snapshots && !snapshot_dir_.empty()) {
              disk_brownout_path = snapshot_dir_ + "/" + SnapshotFileName(uri);
            }
            breaker_failed = true;
            breaker_status = Status::WithCode(
                StatusKind::kIOError, kStoreBreakerOpenCode,
                "circuit breaker open for '" + BreakerPrefix(uri) +
                    "': repeated transient I/O failures; load of '" + uri +
                    "' failed fast (retrying after the cooldown)");
            break;
          case BreakerVerdict::kProbe:
            probe = true;
            break;
          case BreakerVerdict::kProceed:
            break;
        }
        if (!breaker_failed) {
          if (have_stale) {
            // Now really drop the stale entry; the fresh load swaps the new
            // tree in atomically. Holders of the old tree keep a consistent
            // snapshot via shared ownership. A force_fresh drop is counted
            // by the caller (collection_reorders), not as a staleness event.
            if (!opts.force_fresh) {
              totals_.stale_reloads++;
              Bump(opts.stats, &DocStoreStats::stale_reloads);
            }
            bytes_cached_ -= c->second->bytes;
            lru_.erase(c->second);
            cache_.erase(c);
          }
          slot = std::make_shared<InFlight>();
          inflight_[uri] = slot;
          leader = true;
        }
      }
    }

    if (recheck_doc != nullptr) {
      // Hash the file's current bytes against the entry's content hash.
      // A read failure is treated as a mismatch: drop the entry and take
      // the full (retry/breaker-aware) load path.
      Bump(opts.stats, &DocStoreStats::content_rechecks);
      CountGlobal(&DocStoreStats::content_rechecks);
      bool match = false;
      {
        std::string bytes;
        if (ReadWholeFile(uri, &bytes)) match = Hash64(bytes) == recheck_hash;
      }
      std::unique_lock<std::mutex> lock(mu_);
      auto c = cache_.find(uri);
      const bool same_entry =
          c != cache_.end() && c->second->doc == recheck_doc;
      if (match) {
        if (same_entry) lru_.splice(lru_.begin(), lru_, c->second);
        totals_.hits++;
        Bump(opts.stats, &DocStoreStats::hits);
        return recheck_doc;
      }
      if (same_entry) {
        totals_.stale_reloads++;
        Bump(opts.stats, &DocStoreStats::stale_reloads);
        bytes_cached_ -= c->second->bytes;
        lru_.erase(c->second);
        cache_.erase(c);
      }
      continue;  // reload from scratch
    }

    if (breaker_failed) {
      if (!disk_brownout_path.empty()) {
        SnapshotLoadResult r = LoadSnapshot(
            disk_brownout_path, /*expect=*/nullptr, guard,
            fault_injector_.load(std::memory_order_acquire));
        if (r.outcome == SnapshotLoadOutcome::kLoaded) {
          Bump(opts.stats, &DocStoreStats::snapshot_brownout_serves);
          CountGlobal(&DocStoreStats::snapshot_brownout_serves);
          Bump(opts.stats, &DocStoreStats::snapshot_bytes_read, r.bytes_read);
          CountGlobal(&DocStoreStats::snapshot_bytes_read, r.bytes_read);
          return r.doc;  // served uncached: freshness is unknowable here
        }
        if (r.outcome == SnapshotLoadOutcome::kGuardTrip) return r.status;
      }
      Bump(opts.stats, &DocStoreStats::breaker_fast_fails);
      CountGlobal(&DocStoreStats::breaker_fast_fails);
      return breaker_status;
    }

    if (leader) {
      bool leader_trip = false;
      Result<NodePtr> result = LoadAsLeader(uri, guard, opts.stats,
                                            &leader_trip, probe,
                                            opts.use_snapshots);
      {
        std::lock_guard<std::mutex> sl(slot->mu);
        slot->done = true;
        slot->leader_trip = leader_trip;
        if (result.ok()) {
          slot->doc = result.value();
        } else {
          slot->status = result.status();
        }
      }
      slot->cv.notify_all();
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto f = inflight_.find(uri);
        if (f != inflight_.end() && f->second == slot) inflight_.erase(f);
      }
      if (result.ok() && opts.performed_parse != nullptr) {
        *opts.performed_parse = true;
      }
      return result;
    }

    // Waiter: block in short slices so our own deadline/cancellation is
    // honored while the leader works. Abandoning the wait (by returning)
    // is safe — the slot is jointly owned and the leader completes it.
    Bump(opts.stats, &DocStoreStats::singleflight_waits);
    CountGlobal(&DocStoreStats::singleflight_waits);
    bool retry = false;
    {
      std::unique_lock<std::mutex> sl(slot->mu);
      while (!slot->done) {
        XQC_RETURN_IF_ERROR(guard->CheckNow());
        slot->cv.wait_for(sl, std::chrono::milliseconds(1));
      }
      if (slot->doc != nullptr) return slot->doc;
      if (!slot->leader_trip) return slot->status;
      // The leader failed on its *own* guard (deadline/cancel mid-parse).
      // That verdict isn't ours to inherit: loop and retry, possibly
      // becoming the new leader.
      retry = true;
    }
    (void)retry;
  }
}

Result<NodePtr> DocumentStore::LoadAsLeader(const std::string& uri,
                                            QueryGuard* guard,
                                            DocStoreStats* stats,
                                            bool* leader_trip, bool probe,
                                            bool use_snapshots) {
  Bump(stats, &DocStoreStats::misses);
  CountGlobal(&DocStoreStats::misses);
  const std::string prefix = BreakerPrefix(uri);

  ReadOutcome out;
  for (int attempt = 0;; ++attempt) {
    out = ReadFile(uri, guard);
    if (out.status.ok()) break;
    if (out.status.kind() == StatusKind::kResourceExhausted) {
      *leader_trip = true;
      if (probe) BreakerRecordAbort(prefix);
      return out.status;
    }
    if (!out.transient) {
      // A definitive filesystem answer (ENOENT, EACCES, ...): the I/O tier
      // responded, so it counts as breaker success even though the load
      // fails and is negative-cached.
      BreakerRecordSuccess(prefix);
      Status st = out.status;
      std::lock_guard<std::mutex> lock(mu_);
      negative_[uri] = Negative{
          st, std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.negative_ttl_ms)};
      return st;
    }
    BreakerRecordFailure(prefix);
    if (attempt >= options_.max_retries) {
      return Status::WithCode(
          StatusKind::kIOError, kStoreRetriesExhaustedCode,
          "transient I/O failure persisted through " +
              std::to_string(attempt + 1) + " attempts for '" + uri +
              "': " + out.status.message());
    }
    Bump(stats, &DocStoreStats::retries);
    CountGlobal(&DocStoreStats::retries);
    // Jittered exponential backoff in [b, 2b) with b = base << attempt,
    // bounded by the caller's remaining deadline, slept in 1ms slices so
    // cancellation still lands promptly.
    int64_t base = std::max<int64_t>(options_.retry_backoff_ms, 1) << attempt;
    int64_t wait = base + static_cast<int64_t>(
                              NextRand() % static_cast<uint64_t>(base));
    int64_t remaining = guard->remaining_deadline_ms();
    if (remaining >= 0) wait = std::min(wait, remaining);
    for (int64_t slept = 0; slept < wait; ++slept) {
      Status st = guard->CheckNow();
      if (!st.ok()) {
        *leader_trip = true;
        if (probe) BreakerRecordAbort(prefix);
        return st;
      }
      SleepMs(1);
    }
    Status st = guard->CheckNow();
    if (!st.ok()) {
      *leader_trip = true;
      if (probe) BreakerRecordAbort(prefix);
      return st;
    }
  }

  // The read completed: the I/O tier is healthy for this prefix (closes a
  // half-open breaker, resets the consecutive-failure count).
  BreakerRecordSuccess(prefix);

  // --- Disk tier: a valid snapshot of exactly these source bytes skips
  // --- the parse. Any invalid snapshot is quarantined and we fall through
  // --- to the reparse — never to a failure.
  const uint64_t content_hash = Hash64(out.content);
  const std::string snap_path =
      use_snapshots ? SnapshotPathFor(uri) : std::string();
  IoFaultInjector* inj = fault_injector_.load(std::memory_order_acquire);
  bool have_snapshot = false;
  NodePtr doc;
  if (!snap_path.empty()) {
    SnapshotSource src{uri, content_hash,
                       static_cast<int64_t>(out.content.size())};
    SnapshotLoadResult r = LoadSnapshot(snap_path, &src, guard, inj);
    if (r.bytes_read > 0) {
      Bump(stats, &DocStoreStats::snapshot_bytes_read, r.bytes_read);
      CountGlobal(&DocStoreStats::snapshot_bytes_read, r.bytes_read);
    }
    switch (r.outcome) {
      case SnapshotLoadOutcome::kLoaded:
        Bump(stats, &DocStoreStats::snapshot_hits);
        CountGlobal(&DocStoreStats::snapshot_hits);
        doc = std::move(r.doc);
        have_snapshot = true;
        break;
      case SnapshotLoadOutcome::kGuardTrip:
        // The caller's own budget tripped mid-rebuild: per-query verdict,
        // exactly like a mid-parse trip. The snapshot itself is fine.
        *leader_trip = true;
        return r.status;
      case SnapshotLoadOutcome::kMissing:
      case SnapshotLoadOutcome::kIoError:
        break;  // plain miss: parse and (re)write below
      case SnapshotLoadOutcome::kStale:
      case SnapshotLoadOutcome::kVersionSkew:
      case SnapshotLoadOutcome::kCorrupt: {
        QuarantineSnapshotFile(snap_path);
        Bump(stats, &DocStoreStats::snapshot_quarantines);
        CountGlobal(&DocStoreStats::snapshot_quarantines);
        if (r.outcome == SnapshotLoadOutcome::kStale) {
          Bump(stats, &DocStoreStats::snapshot_stale);
          CountGlobal(&DocStoreStats::snapshot_stale);
        }
        std::cerr << "xqc: quarantined snapshot '" << snap_path << "' ("
                  << r.detail << "); reparsing '" << uri << "'\n";
        break;
      }
    }
  }

  if (!have_snapshot) {
    XmlParseOptions popts;
    popts.guard = guard;
    Result<NodePtr> parsed = ParseXml(out.content, popts);
    if (!parsed.ok()) {
      if (parsed.status().kind() == StatusKind::kResourceExhausted) {
        // The caller's budget tripped mid-parse: a per-query verdict, never
        // cached and never shared with waiters.
        *leader_trip = true;
        return parsed.status();
      }
      // Poisoned document: cache the verdict against the file's fingerprint
      // so replays cost a stat, not a parse. The first loader sees the
      // original error; replays are marked XQC0009.
      {
        std::lock_guard<std::mutex> lock(mu_);
        quarantine_[uri] = Quarantined{parsed.status(), out.fp};
      }
      return parsed.status();
    }
    doc = parsed.take();
    if (!snap_path.empty()) {
      // Publish the freshly parsed tree for the next cold start. A failed
      // publish never affects the load (the tree is already in hand).
      SnapshotSource src{uri, content_hash,
                         static_cast<int64_t>(out.content.size())};
      int64_t written = 0;
      Status ws = WriteSnapshot(snap_path, *doc, src, inj, &written);
      if (ws.ok()) {
        Bump(stats, &DocStoreStats::snapshot_writes);
        CountGlobal(&DocStoreStats::snapshot_writes);
        Bump(stats, &DocStoreStats::snapshot_bytes_written, written);
        CountGlobal(&DocStoreStats::snapshot_bytes_written, written);
      } else {
        Bump(stats, &DocStoreStats::snapshot_write_failures);
        CountGlobal(&DocStoreStats::snapshot_write_failures);
        std::cerr << "xqc: snapshot publish failed (load unaffected): "
                  << ws.ToString() << "\n";
      }
    }
  }

  int64_t bytes = static_cast<int64_t>(out.content.size()) +
                  static_cast<int64_t>(doc->SubtreeSize()) *
                      QueryGuard::kNodeCost;
  if (bytes > max_bytes_.load(std::memory_order_relaxed)) {
    // Larger than the whole budget: serve uncached. The parse was already
    // charged to the requesting query's guard by the parser.
    Bump(stats, &DocStoreStats::uncached_oversize);
    CountGlobal(&DocStoreStats::uncached_oversize);
  } else {
    InsertCached(uri, doc, static_cast<int64_t>(out.content.size()), out.fp,
                 content_hash, stats);
  }
  return doc;
}

DocumentStore::ReadOutcome DocumentStore::ReadFile(const std::string& uri,
                                                   QueryGuard* guard) {
  ReadOutcome out;
  IoFaultInjector* inj = fault_injector_.load(std::memory_order_acquire);
  int64_t attempt_no = 0;
  if (inj != nullptr) {
    attempt_no = inj->attempts.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  if (inj != nullptr && inj->mode == IoFaultMode::kFailOpen &&
      (inj->fail_n <= 0 || attempt_no <= inj->fail_n)) {
    out.transient = inj->transient;
    out.status = Status::IOError(
        std::string("injected ") +
        (inj->transient ? "transient" : "permanent") +
        " open failure for document '" + uri + "'");
    return out;
  }
  if (inj != nullptr && inj->mode == IoFaultMode::kFlakyThenSucceed &&
      attempt_no <= inj->fail_n) {
    out.transient = true;
    out.status = Status::IOError("injected flaky read failure for document '" +
                                 uri + "' (attempt " +
                                 std::to_string(attempt_no) + ")");
    return out;
  }

  int fd = ::open(uri.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    int e = errno;
    out.transient = ErrnoIsTransient(e);
    out.status = Status::IOError("cannot open document '" + uri +
                                 "': " + std::strerror(e));
    return out;
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0 || !S_ISREG(sb.st_mode)) {
    ::close(fd);
    out.status =
        Status::IOError("document '" + uri + "' is not a regular file");
    return out;
  }
  out.fp.inode = static_cast<uint64_t>(sb.st_ino);
  out.fp.size = static_cast<int64_t>(sb.st_size);
  out.fp.mtime_sec = static_cast<int64_t>(sb.st_mtim.tv_sec);
  out.fp.mtime_nsec = static_cast<int64_t>(sb.st_mtim.tv_nsec);

  if (inj != nullptr && inj->mode == IoFaultMode::kSlowRead) {
    // A crawling device: let the caller's deadline/cancellation trip
    // mid-load, deterministically.
    for (int64_t i = 0; i < inj->delay_ms; ++i) {
      Status st = guard->CheckNow();
      if (!st.ok()) {
        ::close(fd);
        out.status = st;
        return out;
      }
      SleepMs(1);
    }
  }

  std::string content(static_cast<size_t>(sb.st_size), '\0');
  size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::read(fd, &content[off], content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int e = errno;
      ::close(fd);
      out.transient = ErrnoIsTransient(e);
      out.status = Status::IOError("error reading document '" + uri +
                                   "': " + std::strerror(e));
      return out;
    }
    if (n == 0) break;  // truncated since fstat; parse what we have
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  content.resize(off);

  if (inj != nullptr && inj->mode == IoFaultMode::kShortRead) {
    content.resize(content.size() / 2);
  }

  out.content = std::move(content);
  out.status = Status::OK();
  return out;
}

void DocumentStore::InsertCached(const std::string& uri, const NodePtr& doc,
                                 int64_t content_bytes, const Fingerprint& fp,
                                 uint64_t content_hash, DocStoreStats* stats) {
  int64_t bytes = content_bytes + static_cast<int64_t>(doc->SubtreeSize()) *
                                      QueryGuard::kNodeCost;
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = cache_.find(uri);
  if (existing != cache_.end()) {
    bytes_cached_ -= existing->second->bytes;
    lru_.erase(existing->second);
    cache_.erase(existing);
  }
  lru_.push_front(CacheEntry{uri, doc, bytes, fp, content_hash,
                             std::chrono::steady_clock::now()});
  cache_[uri] = lru_.begin();
  bytes_cached_ += bytes;
  EvictToBudgetLocked(stats);
}

void DocumentStore::EvictToBudgetLocked(DocStoreStats* stats) {
  const int64_t budget = max_bytes_.load(std::memory_order_relaxed);
  while (bytes_cached_ > budget && !lru_.empty()) {
    CacheEntry& victim = lru_.back();
    bytes_cached_ -= victim.bytes;
    cache_.erase(victim.uri);
    lru_.pop_back();
    totals_.evictions++;
    Bump(stats, &DocStoreStats::evictions);
  }
}

bool DocumentStore::Invalidate(const std::string& raw_uri) {
  const std::string uri = NormalizeDocUri(raw_uri);
  bool dropped = false;
  std::string snap_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto c = cache_.find(uri);
    if (c != cache_.end()) {
      bytes_cached_ -= c->second->bytes;
      lru_.erase(c->second);
      cache_.erase(c);
      dropped = true;
    }
    dropped |= quarantine_.erase(uri) > 0;
    dropped |= negative_.erase(uri) > 0;
    if (!snapshot_dir_.empty()) {
      snap_path = snapshot_dir_ + "/" + SnapshotFileName(uri);
    }
  }
  if (!snap_path.empty()) {
    dropped |= ::unlink(snap_path.c_str()) == 0;
    dropped |= ::unlink((snap_path + ".corrupt").c_str()) == 0;
  }
  return dropped;
}

void DocumentStore::InvalidateAll() {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    cache_.clear();
    quarantine_.clear();
    negative_.clear();
    breakers_.clear();
    bytes_cached_ = 0;
    dir = snapshot_dir_;
  }
  if (dir.empty()) return;
  // Remove every snapshot artifact (published, quarantined, orphan temp).
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.find(".xqsnap") == std::string::npos) continue;
    ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

void DocumentStore::DropMemoryCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_.clear();
  bytes_cached_ = 0;
}

void DocumentStore::set_snapshot_dir(const std::string& dir) {
  if (!dir.empty()) {
    ::mkdir(dir.c_str(), 0755);  // one level, best-effort
    int swept = SweepOrphanSnapshotTmps(dir);
    if (swept > 0) {
      std::cerr << "xqc: swept " << swept
                << " orphaned snapshot temp file(s) from '" << dir << "'\n";
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_dir_ = dir;
}

std::string DocumentStore::snapshot_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_dir_;
}

std::string DocumentStore::SnapshotPathFor(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_dir_.empty()) return std::string();
  return snapshot_dir_ + "/" + SnapshotFileName(uri);
}

void DocumentStore::set_max_bytes(int64_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  EvictToBudgetLocked(nullptr);
}

void DocumentStore::set_breaker_threshold(int threshold) {
  breaker_threshold_.store(threshold, std::memory_order_relaxed);
  if (threshold <= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    breakers_.clear();
  }
}

void DocumentStore::set_brownout(bool brownout) {
  brownout_.store(brownout, std::memory_order_relaxed);
}

std::string DocumentStore::BreakerPrefix(const std::string& uri) {
  size_t slash = uri.rfind('/');
  return slash == std::string::npos ? std::string() : uri.substr(0, slash);
}

DocumentStore::BreakerVerdict DocumentStore::BreakerAdmitLocked(
    const std::string& prefix) {
  if (breaker_threshold_.load(std::memory_order_relaxed) <= 0) {
    return BreakerVerdict::kProceed;
  }
  auto it = breakers_.find(prefix);
  if (it == breakers_.end()) return BreakerVerdict::kProceed;
  Breaker& b = it->second;
  switch (b.state) {
    case Breaker::State::kClosed:
      return BreakerVerdict::kProceed;
    case Breaker::State::kOpen:
      if (std::chrono::steady_clock::now() - b.opened_at >=
          std::chrono::milliseconds(options_.breaker_cooldown_ms)) {
        b.state = Breaker::State::kHalfOpen;
        b.probe_in_flight = true;
        breaker_half_opens_++;
        return BreakerVerdict::kProbe;
      }
      return BreakerVerdict::kOpen;
    case Breaker::State::kHalfOpen:
      // The single probe is already out; everyone else still fails fast.
      return BreakerVerdict::kOpen;
  }
  return BreakerVerdict::kProceed;  // unreachable
}

void DocumentStore::BreakerRecordFailure(const std::string& prefix) {
  const int threshold = breaker_threshold_.load(std::memory_order_relaxed);
  if (threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[prefix];
  b.consecutive_failures++;
  if (b.state == Breaker::State::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarted.
    b.state = Breaker::State::kOpen;
    b.opened_at = std::chrono::steady_clock::now();
    b.probe_in_flight = false;
    breaker_opens_++;
  } else if (b.state == Breaker::State::kClosed &&
             b.consecutive_failures >= threshold) {
    b.state = Breaker::State::kOpen;
    b.opened_at = std::chrono::steady_clock::now();
    breaker_opens_++;
  }
}

void DocumentStore::BreakerRecordSuccess(const std::string& prefix) {
  if (breaker_threshold_.load(std::memory_order_relaxed) <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(prefix);
  if (it == breakers_.end()) return;
  Breaker& b = it->second;
  b.consecutive_failures = 0;
  if (b.state == Breaker::State::kHalfOpen) {
    b.state = Breaker::State::kClosed;
    b.probe_in_flight = false;
    breaker_closes_++;
  }
  // kOpen stays open: in-progress loads admitted before the breaker opened
  // don't close it — the half-open probe is the designated recovery test.
}

void DocumentStore::BreakerRecordAbort(const std::string& prefix) {
  if (breaker_threshold_.load(std::memory_order_relaxed) <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(prefix);
  if (it == breakers_.end()) return;
  Breaker& b = it->second;
  if (b.state == Breaker::State::kHalfOpen) {
    // The probe died on its caller's guard, proving nothing about the I/O
    // tier. Re-open with the original opened_at so the next caller may
    // probe immediately.
    b.state = Breaker::State::kOpen;
    b.probe_in_flight = false;
  }
}

DocumentStore::Counters DocumentStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c;
  c.totals = totals_;
  c.bytes_cached = bytes_cached_;
  c.entries = static_cast<int64_t>(cache_.size());
  c.quarantined = static_cast<int64_t>(quarantine_.size());
  c.breaker_opens = breaker_opens_;
  c.breaker_half_opens = breaker_half_opens_;
  c.breaker_closes = breaker_closes_;
  for (const auto& [prefix, b] : breakers_) {
    if (b.state != Breaker::State::kClosed) c.breakers_open++;
  }
  return c;
}

}  // namespace xqc
