// DocumentStore: the fault-tolerant shared home of parsed documents.
//
// The paper's Parse operator is the boundary where the engine meets the
// outside world; this layer makes every failure mode at that boundary
// explicit and cheap, so fn:doc under heavy concurrent traffic behaves
// like managed storage instead of a per-query side effect:
//
//   * Bounded caching. Parsed+finalized trees live in a memory-accounted
//     LRU keyed by *normalized* URI (NormalizeDocUri) under a configurable
//     byte budget. A document larger than the whole budget degrades
//     gracefully: it is served as an uncached parse charged to the
//     requesting query's own guard, never a failure.
//   * Singleflight loading. Concurrent loads of one URI share a single
//     parse. Waiters honor their own deadlines/cancellation tokens (each
//     waits in guard-checked slices) and may abandon the wait at any time
//     without leaking the in-flight slot — the slot is jointly owned and
//     the leader always completes it.
//   * Retry with backoff. I/O failures are classified transient (EINTR,
//     EIO, EAGAIN, fd exhaustion, injected flakiness) or permanent
//     (ENOENT, EACCES, ...). Transient failures retry with jittered
//     exponential backoff bounded by the caller's remaining deadline;
//     exhaustion surfaces as XQC0008. Permanent misses are negative-cached
//     with a TTL so a missing document doesn't cost a syscall per request.
//   * Quarantine. A document that fails to parse is quarantined: the
//     original failure is cached against the file's fingerprint and
//     replayed as XQC0009 (same status kind) without re-reading the file,
//     so a malformed "parse bomb" burns CPU once, not per request. The
//     quarantine lifts automatically when the file changes, or explicitly
//     via Invalidate(uri).
//   * Staleness. Cache hits validate an (inode, size, mtime) fingerprint;
//     a changed file is re-parsed and swapped in atomically (queries
//     holding the old tree keep it alive via shared_ptr).
//   * Persistent snapshots (opt-in: snapshot_dir != ""). The first
//     successful parse of a document serializes the finalized tree to a
//     checksummed binary snapshot (src/store/snapshot.h), atomically
//     published in the snapshot directory. Later cold loads (new process,
//     evicted entry) rebuild the tree from the snapshot instead of
//     re-parsing — the source file is still read (its content hash is the
//     snapshot's freshness key), but the parse is skipped. A snapshot that
//     is torn, truncated, bit-rotted, version-skewed, or stale is
//     quarantined (renamed "*.corrupt") and the load transparently falls
//     back to a reparse: a bad snapshot can never fail a query.
//   * Circuit breaker (opt-in: breaker_threshold > 0). Consecutive
//     transient-I/O failures against one URI prefix (its directory) past
//     the threshold open a per-prefix breaker: further loads fail
//     immediately with XQC0011 — no read, no retry/backoff burn — until
//     the cooldown elapses and a single half-open probe tests recovery
//     (success closes the breaker, failure re-opens it). With the
//     optional brownout policy, an open breaker serves the stale cached
//     tree (flagged in the stats) instead of failing, trading freshness
//     for availability while the I/O tier is sick. With snapshots enabled
//     the brownout extends to the disk tier: if no stale tree is in
//     memory, a valid snapshot is served (without a source read — the
//     source is unreachable by definition while the breaker is open).
//   * Content rechecks. The (inode, size, mtime) fingerprint cannot see a
//     same-size rewrite within the filesystem's mtime granularity. Cache
//     hits within content_recheck_window_ms of the entry's load re-hash
//     the file's bytes and force a reload on mismatch, closing the
//     same-second-rewrite staleness hole.
//
// Guard interplay: the *performing* query's guard is threaded through the
// read and the parse, so deadlines, cancellation, and memory budgets all
// apply mid-load; a guard trip is returned to that caller and is never
// cached or shared with waiters (they retry, possibly becoming the new
// leader).
//
// Thread safety: all public methods are safe to call from any thread. The
// store mutex guards only map/list manipulation; reads and parses run
// unlocked.
#ifndef XQC_STORE_DOCUMENT_STORE_H_
#define XQC_STORE_DOCUMENT_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/store/io_fault.h"
#include "src/xml/node.h"

namespace xqc {

/// Lexically normalizes a document URI so that "a.xml", "./a.xml", and
/// "dir/../a.xml" name one cache entry: collapses "." and ".." segments
/// and duplicate slashes, preserving a leading "/" and leading ".."s of
/// relative paths. URIs with a scheme ("http://...") pass through
/// unchanged. This is the cache-key function for the DocumentStore and
/// DynamicContext's document registry.
std::string NormalizeDocUri(const std::string& uri);

/// Enumerates the member documents of a collection URI (fn:collection /
/// fn:uri-collection). A collection URI names either a directory (members
/// are its "*.xml" entries) or a glob whose last path segment contains '*'
/// (matched against member basenames, non-recursive). Members are returned
/// as normalized URIs in lexicographically sorted order — the collection's
/// stable *ordinal* order, which the k-way merge of the parallel executor
/// keys on (DESIGN.md "Intra-query parallelism"). A glob that matches
/// nothing is a valid, empty collection. Errors:
///   FODC0002  nonexistent or unreadable directory, or a non-file scheme
///   FODC0004  the URI names a regular file (a document, not a collection)
Result<std::vector<std::string>> ListCollectionMembers(const std::string& uri);

/// Per-execution DocumentStore counters (merged into ExecStats::doc_store;
/// observable via PreparedQuery::last_exec_stats and xqc_shell --stats).
struct DocStoreStats {
  int64_t hits = 0;               // served from the LRU cache
  int64_t misses = 0;             // parsed from disk by this execution
  int64_t evictions = 0;          // entries evicted to make room
  int64_t retries = 0;            // transient-failure retries performed
  int64_t quarantine_hits = 0;    // cached failures replayed (XQC0009)
  int64_t negative_hits = 0;      // TTL'd missing-document replays
  int64_t stale_reloads = 0;      // fingerprint mismatches -> re-parse
  int64_t singleflight_waits = 0; // loads served by another query's parse
  int64_t uncached_oversize = 0;  // docs larger than the whole budget
  int64_t breaker_fast_fails = 0; // loads failed XQC0011 by an open breaker
  int64_t brownout_serves = 0;    // stale trees served under brownout

  // --- Persistent snapshot tier (snapshot_dir != "").
  int64_t snapshot_hits = 0;      // trees rebuilt from a valid snapshot
  int64_t snapshot_writes = 0;    // snapshots published after a parse
  int64_t snapshot_write_failures = 0;  // failed publishes (load unaffected)
  int64_t snapshot_quarantines = 0;     // bad snapshots moved to *.corrupt
  int64_t snapshot_stale = 0;     // quarantines caused by source-content skew
  int64_t snapshot_brownout_serves = 0;  // breaker-open serves from disk
  int64_t content_rechecks = 0;   // cache-hit content hashes re-verified
  int64_t snapshot_bytes_read = 0;
  int64_t snapshot_bytes_written = 0;

  // --- fn:collection resolution (collections of documents).
  int64_t collections_resolved = 0;  // collection URIs enumerated
  int64_t collection_members = 0;    // member documents resolved
  int64_t collection_members_skipped = 0;  // bad members skipped (lenient)
  int64_t collection_reorders = 0;   // force-fresh reloads restoring the
                                     // ordinal interval-block order

  void Add(const DocStoreStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    retries += o.retries;
    quarantine_hits += o.quarantine_hits;
    negative_hits += o.negative_hits;
    stale_reloads += o.stale_reloads;
    singleflight_waits += o.singleflight_waits;
    uncached_oversize += o.uncached_oversize;
    breaker_fast_fails += o.breaker_fast_fails;
    brownout_serves += o.brownout_serves;
    snapshot_hits += o.snapshot_hits;
    snapshot_writes += o.snapshot_writes;
    snapshot_write_failures += o.snapshot_write_failures;
    snapshot_quarantines += o.snapshot_quarantines;
    snapshot_stale += o.snapshot_stale;
    snapshot_brownout_serves += o.snapshot_brownout_serves;
    content_rechecks += o.content_rechecks;
    snapshot_bytes_read += o.snapshot_bytes_read;
    snapshot_bytes_written += o.snapshot_bytes_written;
    collections_resolved += o.collections_resolved;
    collection_members += o.collection_members;
    collection_members_skipped += o.collection_members_skipped;
    collection_reorders += o.collection_reorders;
  }
};

struct DocumentStoreOptions {
  /// Byte budget for cached trees (estimated as file bytes + node count *
  /// QueryGuard::kNodeCost). 0 disables caching entirely (every load is an
  /// uncached parse — singleflight, retry, and quarantine still apply).
  int64_t max_bytes = 256 << 20;
  /// How long a missing-document verdict is replayed without re-probing
  /// the filesystem.
  int64_t negative_ttl_ms = 250;
  /// Transient-failure retries per load (on top of the first attempt).
  int max_retries = 3;
  /// Base backoff before retry k is base << (k-1), jittered into
  /// [b, 2b), and always bounded by the caller's remaining deadline.
  int64_t retry_backoff_ms = 2;
  /// Seed for backoff jitter (deterministic by default for tests).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Circuit breaker: consecutive transient-I/O failures against one URI
  /// prefix before its breaker opens and loads fail fast with XQC0011.
  /// 0 disables the breaker entirely (the PR-6 oracle behavior).
  int breaker_threshold = 0;
  /// How long an open breaker blocks loads before a single half-open
  /// probe is allowed to test recovery.
  int64_t breaker_cooldown_ms = 100;
  /// Brownout policy: while a prefix's breaker is open, serve the stale
  /// cached tree for a URI (if one exists) instead of failing XQC0011.
  /// Serves are flagged in DocStoreStats::brownout_serves.
  bool brownout = false;
  /// Directory for persistent tree snapshots ("" disables the disk tier).
  /// Created (one level) if missing; orphaned "*.tmp.*" files from a
  /// crashed writer are swept on configuration.
  std::string snapshot_dir;
  /// Cache hits whose entry was loaded within this window re-hash the
  /// file's content to catch same-size rewrites invisible to the
  /// (inode, size, mtime) fingerprint. 0 disables rechecks.
  int64_t content_recheck_window_ms = 2000;
};

class DocumentStore {
 public:
  explicit DocumentStore(DocumentStoreOptions options = {});
  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// The process-wide store used by DynamicContext unless overridden.
  static DocumentStore* Global();

  struct LoadOptions {
    /// The requesting query's guard: its deadline/cancellation bound the
    /// read, the singleflight wait, and the retry backoff, and its memory
    /// budget is charged for the parse. nullptr = unlimited.
    QueryGuard* guard = nullptr;
    /// Per-execution counters to bump (may be nullptr).
    DocStoreStats* stats = nullptr;
    /// Out: set true iff this call built the document from disk — by
    /// parsing the source or rebuilding its snapshot (cache / singleflight
    /// servings leave it false). May be nullptr.
    bool* performed_parse = nullptr;
    /// Whether this load may use the persistent snapshot tier (no-op when
    /// no snapshot_dir is configured). EngineOptions::use_snapshots /
    /// xqc_shell --no-snapshots thread through to here.
    bool use_snapshots = true;
    /// Treat any existing cache entry as stale: drop it and perform a fresh
    /// leader load (re-parse, or snapshot rebuild — either way the new tree
    /// draws a fresh interval-id block). Collection resolution uses this to
    /// restore ordinal-increasing document order after cache evictions
    /// scrambled the members' finalization order (see
    /// DynamicContext::ResolveCollection).
    bool force_fresh = false;
  };

  /// Resolves `uri` (normalized internally) to a parsed, finalized,
  /// shareable document. Errors:
  ///   XQC0001/XQC0002/XQC0003  caller's guard tripped mid-load
  ///   XQC0008                  transient I/O failure survived all retries
  ///   XQC0009                  quarantined document (cached failure)
  ///   XQC0011                  circuit breaker open for the URI's prefix
  ///   FODC0002                 document does not exist / permanent I/O
  ///   XPST0003 (kParseError)   first parse of a malformed document
  Result<NodePtr> Load(const std::string& uri, const LoadOptions& opts);
  Result<NodePtr> Load(const std::string& uri) {
    return Load(uri, LoadOptions());
  }

  /// ListCollectionMembers with the store's I/O fault injector applied to
  /// the directory enumeration (kFailOpen fails it as FODC0002) and the
  /// per-execution collection counters bumped.
  Result<std::vector<std::string>> ListCollection(const std::string& uri,
                                                  DocStoreStats* stats);

  /// Drops `uri`'s cache entry, quarantine verdict, negative-cache entry,
  /// and (when the disk tier is enabled) its snapshot and quarantined
  /// snapshot files. Returns true if anything was dropped. Queries already
  /// holding the old tree keep it; the next Load re-reads the file.
  bool Invalidate(const std::string& uri);

  /// Invalidate every URI, including all snapshot files on disk.
  void InvalidateAll();

  /// Drops every memory-cache entry but leaves the disk snapshot tier (and
  /// quarantine / negative verdicts) untouched — the next loads are cold
  /// in memory but warm on disk. Test/bench hook.
  void DropMemoryCache();

  /// Reconfigures the snapshot directory at runtime ("" disables the disk
  /// tier). Creates the directory (one level, best-effort) and sweeps
  /// orphaned temp files from crashed writers.
  void set_snapshot_dir(const std::string& dir);
  std::string snapshot_dir() const;

  /// Reconfigures the byte budget, evicting immediately if over. Intended
  /// for startup configuration (xqc_shell --doc-store-mb).
  void set_max_bytes(int64_t max_bytes);

  /// Reconfigures the circuit breaker threshold / brownout policy at
  /// runtime (xqc_shell --breaker-threshold / --brownout). Threshold <= 0
  /// disables the breaker and resets all per-prefix breaker state.
  void set_breaker_threshold(int threshold);
  void set_brownout(bool brownout);

  /// Test-only deterministic I/O faults (see io_fault.h). Not owned; pass
  /// nullptr to clear. Safe to set from any thread between loads.
  void set_fault_injector(IoFaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Cumulative whole-store counters plus current cache occupancy.
  struct Counters {
    DocStoreStats totals;
    int64_t bytes_cached = 0;
    int64_t entries = 0;
    int64_t quarantined = 0;
    /// Breaker state-machine transitions (cumulative) and current opens.
    int64_t breaker_opens = 0;       // closed/half-open -> open
    int64_t breaker_half_opens = 0;  // open -> half-open (probe granted)
    int64_t breaker_closes = 0;      // half-open -> closed (probe succeeded)
    int64_t breakers_open = 0;       // prefixes currently open or half-open
  };
  Counters counters() const;

  DocumentStoreOptions options() const {
    DocumentStoreOptions o = options_;
    o.max_bytes = max_bytes_.load(std::memory_order_relaxed);
    o.breaker_threshold = breaker_threshold_.load(std::memory_order_relaxed);
    o.brownout = brownout_.load(std::memory_order_relaxed);
    return o;
  }

 private:
  /// (inode, size, mtime) identity of a file at read time.
  struct Fingerprint {
    uint64_t inode = 0;
    int64_t size = -1;
    int64_t mtime_sec = 0;
    int64_t mtime_nsec = 0;
    bool operator==(const Fingerprint& o) const {
      return inode == o.inode && size == o.size && mtime_sec == o.mtime_sec &&
             mtime_nsec == o.mtime_nsec;
    }
  };

  struct CacheEntry {
    std::string uri;
    NodePtr doc;
    int64_t bytes = 0;
    Fingerprint fp;
    /// XXH64 of the source bytes this tree was built from; doubles as the
    /// snapshot freshness key and the content-recheck oracle.
    uint64_t content_hash = 0;
    /// When the entry was (re)loaded; hits inside the recheck window
    /// re-verify content_hash against the file.
    std::chrono::steady_clock::time_point loaded_at;
  };

  /// Jointly owned singleflight slot: the leader parses and publishes; any
  /// number of waiters block on `cv` in guard-checked slices and may
  /// abandon at any time (shared ownership means no leak either way).
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;            // when done
    NodePtr doc;              // when done && status.ok()
    bool leader_trip = false; // failure was the leader's own guard trip
  };

  struct Quarantined {
    Status status;  // the original parse/validation failure
    Fingerprint fp;
  };

  struct Negative {
    Status status;  // the original not-found / permanent I/O failure
    std::chrono::steady_clock::time_point expires;
  };

  /// Per-URI-prefix circuit breaker (see the file comment). All state is
  /// guarded by mu_; the read/parse itself still runs unlocked.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point opened_at;
    bool probe_in_flight = false;  // kHalfOpen: the single granted probe
  };

  /// The breaker grouping key: the URI's directory ("" for bare names),
  /// so one sick mount/device opens one breaker, not one per file.
  static std::string BreakerPrefix(const std::string& uri);

  /// Admission decision for `uri` under its prefix's breaker. Caller
  /// holds mu_. kProbe means the caller was granted the single half-open
  /// probe and MUST report its outcome (success/failure/abort).
  enum class BreakerVerdict { kProceed, kProbe, kOpen };
  BreakerVerdict BreakerAdmitLocked(const std::string& prefix);

  /// Outcome reporting from the leader's read attempts (lock taken
  /// inside). A transient failure feeds the failure counter and can open
  /// the breaker; a successful read closes a half-open breaker and resets
  /// the counter; an aborted probe (the leader's own guard tripped)
  /// returns the breaker to kOpen so the next caller may probe.
  void BreakerRecordFailure(const std::string& prefix);
  void BreakerRecordSuccess(const std::string& prefix);
  void BreakerRecordAbort(const std::string& prefix);

  /// One full read+retry+parse cycle, performed by a singleflight leader
  /// outside the store lock. On success also inserts into the cache /
  /// quarantine / negative maps. `probe` marks the breaker's half-open
  /// probe, whose outcome must be reported back to the breaker.
  Result<NodePtr> LoadAsLeader(const std::string& uri, QueryGuard* guard,
                               DocStoreStats* stats, bool* leader_trip,
                               bool probe, bool use_snapshots);

  /// Reads the file, applying injected faults and classifying errors.
  struct ReadOutcome {
    Status status;
    bool transient = false;
    std::string content;
    Fingerprint fp;
  };
  ReadOutcome ReadFile(const std::string& uri, QueryGuard* guard);

  /// Inserts a parsed doc, evicting LRU entries while over budget.
  void InsertCached(const std::string& uri, const NodePtr& doc,
                    int64_t content_bytes, const Fingerprint& fp,
                    uint64_t content_hash, DocStoreStats* stats);

  /// The snapshot file path for a normalized URI, or "" when the disk
  /// tier is disabled. Takes mu_; call only when it isn't held.
  std::string SnapshotPathFor(const std::string& uri) const;

  /// Evicts LRU entries until bytes_cached_ <= options_.max_bytes.
  /// Caller holds mu_.
  void EvictToBudgetLocked(DocStoreStats* stats);

  /// Fills `fp` from the file's metadata; false when the file is missing
  /// or not a regular file.
  static bool StatFile(const std::string& path, Fingerprint* fp);

  /// Thread-safe splitmix64 stream for backoff jitter.
  uint64_t NextRand();

  /// Bumps a per-execution counter (null-safe; per-exec stats are owned by
  /// one query and need no lock).
  static void Bump(DocStoreStats* stats, int64_t DocStoreStats::*field,
                   int64_t n = 1) {
    if (stats != nullptr) stats->*field += n;
  }
  /// Bumps a whole-store counter (takes mu_; call only when it isn't held).
  void CountGlobal(int64_t DocStoreStats::*field, int64_t n = 1);

  /// Immutable after construction, except max_bytes / breaker_threshold /
  /// brownout which live in the atomic mirrors below (runtime setters).
  DocumentStoreOptions options_;
  std::atomic<int64_t> max_bytes_;
  std::atomic<int> breaker_threshold_;
  std::atomic<bool> brownout_;
  std::atomic<IoFaultInjector*> fault_injector_{nullptr};
  std::atomic<uint64_t> jitter_state_;

  mutable std::mutex mu_;
  std::string snapshot_dir_;   // "" = disk tier disabled (guarded by mu_)
  std::list<CacheEntry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::unordered_map<std::string, Quarantined> quarantine_;
  std::unordered_map<std::string, Negative> negative_;
  std::unordered_map<std::string, Breaker> breakers_;
  int64_t bytes_cached_ = 0;
  DocStoreStats totals_;
  int64_t breaker_opens_ = 0;
  int64_t breaker_half_opens_ = 0;
  int64_t breaker_closes_ = 0;
};

}  // namespace xqc

#endif  // XQC_STORE_DOCUMENT_STORE_H_
