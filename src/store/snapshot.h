// Persistent binary snapshots of finalized document trees — the disk tier
// behind DocumentStore (the RadegastXDB native-storage direction). A
// snapshot stores the fully parsed, finalized tree of one source document
// so a later process (or a cold cache) can rebuild it without re-running
// the XML parser, which dominates first-touch latency.
//
// Format (version 1; all integers little-endian, fixed width):
//
//   +--------------------------------------------------------------+
//   | Header (fixed size)                                          |
//   |   magic "XQCSNAP1"  u64                                      |
//   |   format version    u32     section count  u32               |
//   |   node count        u64     dict count     u64               |
//   |   source size       i64     source content hash (XXH64) u64  |
//   |   uri hash          u64     header hash (XXH64 of above) u64 |
//   +--------------------------------------------------------------+
//   | Section table: per section { offset u64, bytes u64,          |
//   |                              hash u64 (XXH64 of payload) }   |
//   +--------------------------------------------------------------+
//   | Sections (columnar node records, preorder = FinalizeTree     |
//   | numbering: node, then its attributes, then child subtrees):  |
//   |   0 kinds         node_count * u8                            |
//   |   1 names         node_count * u32   (dictionary index)      |
//   |   2 types         node_count * u32   (type annotation)       |
//   |   3 starts        node_count * u64   (tree-relative "pre")   |
//   |   4 ends          node_count * u64   (tree-relative "post")  |
//   |   5 attr counts   node_count * u32                           |
//   |   6 child counts  node_count * u32                           |
//   |   7 value offsets (node_count+1) * u64 into the value blob   |
//   |   8 value blob    raw bytes                                  |
//   |   9 dictionary    dict_count * { u32 len, bytes }            |
//   |  10 uri           raw bytes of the normalized source URI     |
//   +--------------------------------------------------------------+
//   | Footer (written LAST): magic "XQCFOOT1" u64,                 |
//   |   whole-file hash u64 (XXH64 of bytes [0, footer)),          |
//   |   total length u64 (must equal the file's size)              |
//   +--------------------------------------------------------------+
//
// Crash consistency: the writer serializes everything into memory, writes
// it to a uniquely named "*.tmp.<pid>.<seq>" sibling, fsyncs, and only
// then renames onto the final path (and fsyncs the directory). A crash at
// any point leaves either the old snapshot, no snapshot, or an orphan temp
// file — never a partial file under the published name. Because the footer
// is the last bytes written, truncation of a published file (bit-rot,
// filesystem bugs) is self-evident: the footer magic / length check fails
// before any section is trusted.
//
// Interval preservation: the columnar records store each node's
// *tree-relative* pre/post interval (rel = global - block base). Loading
// reserves a fresh contiguous id block (AllocateOrderBlock) and assigns
// start = base + rel, reproducing exactly what FinalizeTree would have
// computed — O(1) containment/doc-order tests and the lazily built
// DocumentIndex work identically on snapshot-loaded trees.
//
// Name bridging: Symbol ids are process-local, so nodes store dictionary
// indexes and the dictionary stores spellings; loading interns each
// spelling once through the sharded interner and maps indexes to the
// current process's Symbols.
//
// Validation is layered so a stale snapshot is rejected from the header
// alone (no section is read): magic -> version -> header hash -> footer
// magic/length -> source fingerprint (content hash + size + uri), and only
// then — when the snapshot will actually be used — the whole-file hash,
// per-section hashes, and full structural validation of the node records
// (bounds, preorder/interval consistency, leaf attributes). Any integrity
// failure classifies as kCorrupt/kVersionSkew/kStale; the caller
// (DocumentStore) quarantines the file and falls back to reparse.
#ifndef XQC_STORE_SNAPSHOT_H_
#define XQC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/store/io_fault.h"
#include "src/xml/node.h"

namespace xqc {

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Identity of the source document a snapshot was built from. A snapshot
/// is valid for a source iff the content hash, byte size, and normalized
/// URI all match — deliberately independent of (inode, mtime), so copying
/// a file or restoring it from backup does not invalidate its snapshot.
struct SnapshotSource {
  std::string uri;            // normalized source URI
  uint64_t content_hash = 0;  // XXH64 of the source bytes
  int64_t size = -1;          // source size in bytes
};

enum class SnapshotLoadOutcome : uint8_t {
  kLoaded,       // tree rebuilt; intervals re-based onto a fresh id block
  kMissing,      // no snapshot file at the path (a plain miss)
  kStale,        // integrity OK but built from different source content
  kVersionSkew,  // recognizably a snapshot, but another format version
  kCorrupt,      // torn / truncated / bit-rotted / structurally invalid
  kGuardTrip,    // the caller's guard tripped mid-load (see status)
  kIoError,      // the file exists but could not be opened/read
};

struct SnapshotLoadResult {
  SnapshotLoadOutcome outcome = SnapshotLoadOutcome::kMissing;
  NodePtr doc;         // set iff outcome == kLoaded
  Status status;       // kGuardTrip: the guard's verdict
  std::string detail;  // one-line human-readable reason for non-kLoaded
  int64_t bytes_read = 0;  // snapshot bytes read (header-only rejects are
                           // cheap; kLoaded reads the whole file)
};

/// The snapshot file name for a normalized document URI:
/// "<xxh64-hex>-<sanitized stem>.xqsnap". The hash makes the name unique
/// per URI (collisions are caught by the URI stored inside the file and
/// classified kStale); the sanitized stem keeps the directory
/// human-readable.
std::string SnapshotFileName(const std::string& normalized_uri);

/// Serializes `root` (a finalized tree) and atomically publishes it at
/// `snap_path` (write temp sibling -> fsync -> rename -> fsync dir).
/// `bytes_written` (optional) reports the snapshot's size on success. On
/// any failure the temp file is removed and the previously published
/// snapshot (if any) is untouched.
Status WriteSnapshot(const std::string& snap_path, const Node& root,
                     const SnapshotSource& source, IoFaultInjector* injector,
                     int64_t* bytes_written = nullptr);

/// Loads and validates the snapshot at `snap_path`. `expect` carries the
/// current source identity; pass nullptr to skip the freshness check and
/// accept any internally consistent snapshot (the circuit-breaker brownout
/// path, where the source is unreadable by definition). The caller's guard
/// bounds the rebuild: node construction is accounted against its memory
/// budget and its deadline/cancellation are checked in chunks, exactly as
/// a parse would be.
SnapshotLoadResult LoadSnapshot(const std::string& snap_path,
                                const SnapshotSource* expect,
                                QueryGuard* guard, IoFaultInjector* injector);

/// Moves a bad snapshot aside to "<snap_path>.corrupt" (replacing any
/// previous quarantined file) so it can never be served again but remains
/// available for post-mortem. Returns false if the rename failed (the
/// caller should then unlink). Best-effort either way: the reparse
/// fallback proceeds regardless.
bool QuarantineSnapshotFile(const std::string& snap_path);

/// Cold-start recovery sweep: removes orphaned "*.tmp.*" files that a
/// crash mid-write left in `dir`. Published snapshots and quarantined
/// "*.corrupt" files are untouched. Returns the number removed.
int SweepOrphanSnapshotTmps(const std::string& dir);

}  // namespace xqc

#endif  // XQC_STORE_SNAPSHOT_H_
