#include "src/net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace xqc {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const std::string* HttpResponse::FindHeader(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::IOError("bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IOError("connect(" + host + ":" +
                                std::to_string(port) +
                                "): " + std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buf_.clear();
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status HttpClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::IOError("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send(): " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

void HttpClient::HalfClose() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status HttpClient::ReadResponse(HttpResponse* out, int64_t timeout_ms) {
  if (fd_ < 0) return Status::IOError("not connected");
  *out = HttpResponse();
  const int64_t deadline = NowMs() + timeout_ms;
  bool peer_closed = false;
  auto fill = [&]() -> Status {
    const int64_t left = deadline - NowMs();
    if (left <= 0) return Status::IOError("response read timed out");
    pollfd pfd{fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr == 0) return Status::IOError("response read timed out");
    char tmp[4096];
    ssize_t n = ::read(fd_, tmp, sizeof(tmp));
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::IOError("read(): " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      peer_closed = true;
      return Status::OK();
    }
    buf_.append(tmp, static_cast<size_t>(n));
    return Status::OK();
  };

  // Header block.
  size_t hdr_end;
  while ((hdr_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    if (peer_closed) {
      return Status::IOError(buf_.empty() ? "closed"
                                          : "closed mid-response-headers");
    }
    Status st = fill();
    if (!st.ok()) return st;
  }
  const std::string head = buf_.substr(0, hdr_end);
  size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  if (status_line.rfind("HTTP/1.", 0) != 0 || status_line.size() < 12) {
    return Status::IOError("bad status line '" + status_line + "'");
  }
  out->status = std::atoi(status_line.c_str() + 9);
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    const std::string line =
        head.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    out->headers.emplace_back(ToLower(line.substr(0, colon)), value);
  }
  if (const std::string* conn = out->FindHeader("connection")) {
    out->keep_alive = ToLower(*conn) != "close";
  }

  // Body: Content-Length framed, or close-delimited.
  const size_t body_start = hdr_end + 4;
  if (const std::string* cl = out->FindHeader("content-length")) {
    const size_t n = static_cast<size_t>(std::atoll(cl->c_str()));
    while (buf_.size() < body_start + n) {
      if (peer_closed) {
        return Status::IOError("closed mid-response-body (got " +
                               std::to_string(buf_.size() - body_start) +
                               " of " + std::to_string(n) + " bytes)");
      }
      Status st = fill();
      if (!st.ok()) return st;
    }
    out->body = buf_.substr(body_start, n);
    buf_.erase(0, body_start + n);
    return Status::OK();
  }
  while (!peer_closed) {
    Status st = fill();
    if (!st.ok()) return st;
  }
  out->body = buf_.substr(body_start);
  out->keep_alive = false;
  buf_.clear();
  return Status::OK();
}

Status HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body, HttpResponse* out, int64_t timeout_ms) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: localhost\r\n";
  for (const auto& [k, v] : headers) req += k + ": " + v + "\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "\r\n";
  req += body;
  Status st = SendRaw(req);
  if (!st.ok()) return st;
  return ReadResponse(out, timeout_ms);
}

Status HttpFetch(const std::string& host, int port, const std::string& method,
                 const std::string& target,
                 const std::vector<std::pair<std::string, std::string>>&
                     headers,
                 const std::string& body, HttpResponse* out,
                 int64_t timeout_ms) {
  HttpClient client;
  Status st = client.Connect(host, port);
  if (!st.ok()) return st;
  return client.Request(method, target, headers, body, out, timeout_ms);
}

}  // namespace xqc
