#include "src/net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/base/strutil.h"

namespace xqc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kNever = Clock::time_point::max();

/// RFC 7230 tchar: the characters legal in a method or header name.
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpParseVerdict Bad(HttpParseError* err, int status, std::string msg) {
  err->http_status = status;
  err->message = std::move(msg);
  return HttpParseVerdict::kBad;
}

/// A line may not smuggle stray CR or LF (the block was split on CRLF, so
/// any survivor is a bare-LF or bare-CR framing trick) or NUL/CTL bytes.
bool LineHasCtl(std::string_view line) {
  for (char c : line) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') return true;
    if (u == 0x7f) return true;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpParseVerdict ParseHttpRequest(std::string_view in,
                                  const HttpParseLimits& limits,
                                  HttpRequest* out, size_t* consumed,
                                  HttpParseError* err) {
  *out = HttpRequest();
  *consumed = 0;
  const size_t hdr_end = in.find("\r\n\r\n");
  if (hdr_end == std::string_view::npos) {
    if (in.size() > limits.max_header_bytes) {
      return Bad(err, 431, "header block exceeds " +
                               std::to_string(limits.max_header_bytes) +
                               " bytes with no terminator");
    }
    // Fail garbage early instead of buffering it until the terminator:
    // a NUL can never appear in a valid envelope, and a blank line that
    // arrived as bare LFLF will never be followed by the CRLF form.
    if (in.find('\0') != std::string_view::npos) {
      return Bad(err, 400, "NUL byte in request envelope");
    }
    if (in.find("\n\n") != std::string_view::npos) {
      return Bad(err, 400, "bare-LF line endings (CRLF required)");
    }
    return HttpParseVerdict::kNeedMore;
  }
  const size_t block_len = hdr_end + 4;
  if (block_len > limits.max_header_bytes) {
    return Bad(err, 431, "header block exceeds " +
                             std::to_string(limits.max_header_bytes) +
                             " bytes");
  }
  std::string_view block = in.substr(0, hdr_end);  // without final CRLFCRLF

  // --- request line ----------------------------------------------------
  size_t line_end = block.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? block : block.substr(0, line_end);
  if (LineHasCtl(request_line)) {
    return Bad(err, 400, "control byte in request line");
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Bad(err, 400, "request line is not 'METHOD target HTTP/1.x'");
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16) {
    return Bad(err, 400, "bad method");
  }
  for (char c : method) {
    if (c < 'A' || c > 'Z') return Bad(err, 400, "bad method token");
  }
  if (version == "HTTP/1.1") {
    out->http11 = true;
  } else if (version == "HTTP/1.0") {
    out->http11 = false;
  } else {
    return Bad(err, 400, "unsupported protocol version '" +
                             std::string(version) + "'");
  }
  if (target.empty() || target[0] != '/') {
    return Bad(err, 400, "request target must be origin-form (start with /)");
  }
  for (char c : target) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u >= 0x7f) {
      return Bad(err, 400, "illegal byte in request target");
    }
  }
  out->method = std::string(method);
  out->target = std::string(target);
  const size_t qmark = target.find('?');
  out->path = PercentDecode(target.substr(0, qmark));
  out->query_string = qmark == std::string_view::npos
                          ? std::string()
                          : std::string(target.substr(qmark + 1));

  // --- header fields ---------------------------------------------------
  size_t pos = line_end == std::string_view::npos ? block.size() : line_end + 2;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    std::string_view line = block.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? block.size() : eol + 2;
    if (out->headers.size() >= limits.max_headers) {
      return Bad(err, 431, "more than " + std::to_string(limits.max_headers) +
                               " header fields");
    }
    if (LineHasCtl(line)) return Bad(err, 400, "control byte in header field");
    if (line.empty() || line[0] == ' ' || line[0] == '\t') {
      return Bad(err, 400, "obsolete header folding / empty header line");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Bad(err, 400, "header field without a name:value separator");
    }
    std::string_view name = line.substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) {
        return Bad(err, 400, "illegal character in header name");
      }
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    out->headers.emplace_back(ToLower(name), std::string(value));
  }

  // --- connection semantics -------------------------------------------
  out->keep_alive = out->http11;
  if (const std::string* conn = out->FindHeader("connection")) {
    const std::string lowered = ToLower(*conn);
    if (lowered.find("close") != std::string::npos) out->keep_alive = false;
    if (lowered.find("keep-alive") != std::string::npos && !out->http11) {
      out->keep_alive = true;
    }
  }

  // --- body framing ----------------------------------------------------
  const std::string* te = out->FindHeader("transfer-encoding");
  std::vector<const std::string*> cls;
  for (const auto& [k, v] : out->headers) {
    if (k == "content-length") cls.push_back(&v);
  }
  if (te != nullptr && !cls.empty()) {
    return Bad(err, 400,
               "both Content-Length and Transfer-Encoding present");
  }
  if (te != nullptr) {
    if (ToLower(*te) != "chunked") {
      return Bad(err, 400, "unsupported Transfer-Encoding '" + *te + "'");
    }
    // Chunked framing: size-line CRLF data CRLF ... 0 CRLF trailers CRLF.
    size_t p = block_len;
    for (;;) {
      const size_t eol = in.find("\r\n", p);
      if (eol == std::string_view::npos) {
        if (in.size() - p > 1024) {
          return Bad(err, 400, "unterminated chunk-size line");
        }
        return HttpParseVerdict::kNeedMore;
      }
      std::string_view size_line = in.substr(p, eol - p);
      if (size_line.size() > 1024) {
        return Bad(err, 400, "oversized chunk-size line");
      }
      const size_t semi = size_line.find(';');  // chunk extensions: ignored
      std::string_view hex = size_line.substr(0, semi);
      if (hex.empty() || hex.size() > 7) {
        return Bad(err, 400, "bad chunk size '" + std::string(size_line) +
                                 "'");
      }
      uint64_t chunk = 0;
      for (char c : hex) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return Bad(err, 400, "non-hex chunk size");
        chunk = chunk * 16 + static_cast<uint64_t>(d);
      }
      if (out->body.size() + chunk > limits.max_body_bytes) {
        return Bad(err, 413, "chunked body exceeds " +
                                 std::to_string(limits.max_body_bytes) +
                                 " bytes");
      }
      p = eol + 2;
      if (chunk == 0) {
        // Trailers: zero or more header lines, then a blank line. They
        // are parsed for framing and discarded.
        size_t trailers = 0;
        for (;;) {
          const size_t teol = in.find("\r\n", p);
          if (teol == std::string_view::npos) {
            if (in.size() - p > 1024) {
              return Bad(err, 400, "unterminated chunk trailer");
            }
            return HttpParseVerdict::kNeedMore;
          }
          std::string_view tline = in.substr(p, teol - p);
          p = teol + 2;
          if (tline.empty()) {
            *consumed = p;
            return HttpParseVerdict::kDone;
          }
          if (LineHasCtl(tline) || ++trailers > 8 || tline.size() > 1024) {
            return Bad(err, 400, "bad chunk trailer");
          }
        }
      }
      if (in.size() < p + chunk + 2) return HttpParseVerdict::kNeedMore;
      if (in[p + chunk] != '\r' || in[p + chunk + 1] != '\n') {
        return Bad(err, 400, "chunk data not terminated by CRLF");
      }
      out->body.append(in.substr(p, chunk));
      p += chunk + 2;
    }
  }
  if (!cls.empty()) {
    for (const std::string* cl : cls) {
      if (!IsDigits(*cl) || cl->size() > 18 || *cl != *cls[0]) {
        return Bad(err, 400, "bad or conflicting Content-Length");
      }
    }
    const uint64_t n = std::stoull(*cls[0]);
    if (n > limits.max_body_bytes) {
      return Bad(err, 413, "declared body of " + *cls[0] + " bytes exceeds " +
                               std::to_string(limits.max_body_bytes));
    }
    if (in.size() < block_len + n) return HttpParseVerdict::kNeedMore;
    out->body = std::string(in.substr(block_len, n));
    *consumed = block_len + n;
    return HttpParseVerdict::kDone;
  }
  *consumed = block_len;
  return HttpParseVerdict::kDone;
}

int HttpStatusForQueryStatus(const Status& s) {
  if (s.ok()) return 200;
  switch (s.kind()) {
    case StatusKind::kParseError:
    case StatusKind::kXQueryError:
      return 400;
    case StatusKind::kNotImplemented:
      return 501;
    case StatusKind::kInternal:
      return 500;
    case StatusKind::kIOError:
      return 502;  // backend (document store / disk) failure
    case StatusKind::kResourceExhausted: {
      const std::string& code = s.code();
      if (code == kGuardTimeoutCode) return 504;
      if (code == kServiceOverloadedCode || code == kTenantOverQuotaCode) {
        return 429;
      }
      if (code == kServiceDrainingCode || code == kGuardCancelledCode) {
        return 503;
      }
      return 422;  // the query's own resource trips (memory/output/steps)
    }
    default:
      return 500;
  }
}

// ---- server lifecycle -------------------------------------------------

HttpServer::HttpServer(HttpServerOptions options, QueryService* service)
    : options_(std::move(options)), service_(service) {
  options_.max_connections = std::max(1, options_.max_connections);
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::IOError("bind(" + options_.bind_address + ":" +
                                std::to_string(options_.port) +
                                "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    Status st = Status::IOError("listen(): " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe(): " + std::string(strerror(errno)));
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  ::fcntl(wake_r_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_w_, F_SETFL, O_NONBLOCK);

  started_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void HttpServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  RequestDrainFromSignal();  // any wake byte gets the loop to act on it
}

void HttpServer::RequestDrainFromSignal() {
  // Async-signal-safe: one write(2) on the pre-opened pipe, nothing else.
  if (wake_w_ >= 0) {
    const char c = 'D';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
  }
}

bool HttpServer::WaitDrained(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(drained_mu_);
  return drained_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [this] { return fully_drained_; });
}

void HttpServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  BeginDrain();
  // Grace for in-flight work plus slack for the final response writes;
  // whatever is left gets force-closed by the exiting loop. This bound is
  // what makes the drain crash-only: Stop() always returns.
  WaitDrained(options_.drain_grace_ms + 2000);
  stop_.store(true, std::memory_order_release);
  RequestDrainFromSignal();
  if (loop_.joinable()) loop_.join();
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  wake_r_ = wake_w_ = -1;
  started_.store(false, std::memory_order_release);
}

HttpServer::Counters HttpServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

// ---- event loop -------------------------------------------------------

void HttpServer::RunLoop() {
  bool drain_armed = false;
  while (true) {
    if (stop_.load(std::memory_order_acquire)) break;
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_armed) {
      drain_armed = true;
      drain_started_ = Clock::now();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);  // crash-only: no new connections, period
        listen_fd_ = -1;
      }
      // Idle keep-alive connections have nothing in flight — close them
      // now so drain completion only waits on real work. BeginDrain sets
      // draining_ from the caller's thread, so a request sent just before
      // the drain may still sit unread in the kernel buffer; MSG_PEEK
      // before declaring a connection idle (closing with unread data
      // would RST a request we were about to serve a clean XQC0012).
      std::vector<uint64_t> idle;
      for (auto& [id, conn] : conns_) {
        if (conn->state == ConnState::kReadingHeaders &&
            !conn->saw_request_bytes && conn->in.empty()) {
          char c;
          if (::recv(conn->fd, &c, 1, MSG_PEEK | MSG_DONTWAIT) != 1) {
            idle.push_back(id);  // no pending bytes (or EOF): truly idle
          }
        }
      }
      for (uint64_t id : idle) {
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          counters_.idle_closed++;
        }
        CloseConn(id);
      }
    }

    // --- build the poll set.
    std::vector<pollfd> fds;
    std::vector<uint64_t> fd_conn;  // conns_[i] id per fds entry (0 = none)
    fds.push_back({wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    bool listener_polled = false;
    if (listen_fd_ >= 0 && !draining) {
      const bool at_capacity =
          conns_.size() >= static_cast<size_t>(options_.max_connections);
      const bool queue_saturated =
          options_.accept_backpressure &&
          service_->queue_depth() >= service_->options().max_queue;
      if (!at_capacity && !queue_saturated) {
        fds.push_back({listen_fd_, POLLIN, 0});
        fd_conn.push_back(0);
        listener_polled = true;
      } else {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.accept_paused++;
      }
    }
    const Clock::time_point now = Clock::now();
    for (auto& [id, conn] : conns_) {
      short events = 0;
      switch (conn->state) {
        case ConnState::kReadingHeaders:
        case ConnState::kReadingBody:
          events = POLLIN;
          break;
        case ConnState::kExecuting:
          // Watch for the client vanishing, but stop once we have peeked
          // pipelined data (level-triggered POLLIN would spin).
          if (!conn->peeked_data) events = POLLIN;
          break;
        case ConnState::kWriting:
          if (conn->write_cooldown <= now) events = POLLOUT;
          break;
      }
      if (events == 0) continue;
      fds.push_back({conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    // --- poll timeout from the earliest timer.
    Clock::time_point next = NextDeadline();
    int timeout_ms = 1000;
    if (next != kNever) {
      auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
              .count();
      timeout_ms = static_cast<int>(std::clamp<int64_t>(left, 0, 1000));
    }
    ::poll(fds.data(), fds.size(), timeout_ms);

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      ssize_t n;
      while ((n = ::read(wake_r_, buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < n; i++) {
          if (buf[i] == 'D') draining_.store(true, std::memory_order_release);
        }
      }
    }
    DrainCompletions();
    for (size_t i = 1; i < fds.size(); i++) {
      if (fds[i].revents == 0) continue;
      if (fd_conn[i] == 0) {
        if (listener_polled && fds[i].fd == listen_fd_) AcceptReady();
        continue;
      }
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn* conn = it->second.get();
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          conn->state != ConnState::kWriting) {
        HandleReadable(conn);
      }
      it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      conn = it->second.get();
      if ((fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0 &&
          conn->state == ConnState::kWriting) {
        HandleWritable(conn);
      }
    }
    EnforceTimeouts();
    CheckDrained();
  }
  // Loop exit: force-close whatever survived the drain bound.
  for (auto& [id, conn] : conns_) {
    if (conn->cancel.live()) conn->cancel.RequestCancel();
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  CheckDrained();
}

void HttpServer::AcceptReady() {
  for (int i = 0; i < 64; i++) {
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) return;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      // EMFILE/ENFILE/ECONNABORTED: survivable — count it and keep
      // serving existing connections.
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.accept_faults++;
      return;
    }
    NetFaultInjector* inj = options_.fault_injector;
    if (inj != nullptr && inj->mode == NetFaultMode::kAcceptFail &&
        inj->Fire()) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.accept_faults++;
      continue;
    }
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->phase_deadline =
        Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
    const uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.accepted++;
    counters_.open_connections = static_cast<int64_t>(conns_.size());
  }
}

void HttpServer::HandleReadable(Conn* conn) {
  if (conn->state == ConnState::kExecuting) {
    // Only peeking: data stays queued for the next request; EOF means the
    // client is gone and the in-flight work should stop burning a worker.
    char c;
    ssize_t n = ::recv(conn->fd, &c, 1, MSG_PEEK);
    if (n == 0) {
      if (conn->cancel.live()) conn->cancel.RequestCancel();
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.client_closed_early++;
      }
      CloseConn(conn->id);
    } else if (n > 0) {
      conn->peeked_data = true;
    }
    return;
  }
  NetFaultInjector* inj = options_.fault_injector;
  if (inj != nullptr && inj->mode == NetFaultMode::kStalledRead &&
      inj->Fire()) {
    // Pretend the bytes never arrived; stop polling so the stall is
    // silent, and let the phase timeout evict the connection.
    conn->peeked_data = true;  // reused as a "don't poll POLLIN" latch
    return;
  }
  bool got_bytes = false;
  for (;;) {
    char buf[4096];
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      got_bytes = true;
      conn->in.append(buf, static_cast<size_t>(n));
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.bytes_in += n;
      continue;
    }
    if (n == 0) {
      // EOF. Mid-request it's a premature close; between requests it's a
      // normal connection end.
      if (conn->saw_request_bytes || !conn->in.empty()) {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.client_closed_early++;
      }
      CloseConn(conn->id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn->id);  // ECONNRESET and friends
    return;
  }
  if (!got_bytes) return;
  if (!conn->saw_request_bytes) {
    conn->saw_request_bytes = true;
    conn->phase_deadline =
        Clock::now() + std::chrono::milliseconds(options_.header_timeout_ms);
  }
  // Absolute backstop on buffered bytes: the parser bounds header and
  // body, but a flood of pipelined garbage must not grow the buffer
  // unboundedly while a response is being computed.
  if (conn->in.size() >
      options_.max_header_bytes + options_.max_body_bytes + 65536) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.malformed++;
    }
    StartResponse(conn, 400, kMalformedRequestCode,
                  std::string("[") + kMalformedRequestCode +
                      "] pipelined input exceeds buffer cap\n",
                  "text/plain; charset=utf-8", /*close_conn=*/true);
    return;
  }
  AdvanceConn(conn);
}

void HttpServer::AdvanceConn(Conn* conn) {
  if (conn->state != ConnState::kReadingHeaders &&
      conn->state != ConnState::kReadingBody) {
    return;  // a response or execution is in flight; bytes wait their turn
  }
  HttpParseLimits limits;
  limits.max_header_bytes = options_.max_header_bytes;
  limits.max_headers = options_.max_headers;
  limits.max_body_bytes = options_.max_body_bytes;
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  switch (ParseHttpRequest(conn->in, limits, &req, &consumed, &err)) {
    case HttpParseVerdict::kNeedMore:
      if (conn->state == ConnState::kReadingHeaders &&
          conn->in.find("\r\n\r\n") != std::string::npos) {
        conn->state = ConnState::kReadingBody;
        conn->phase_deadline =
            Clock::now() + std::chrono::milliseconds(options_.read_timeout_ms);
      }
      return;
    case HttpParseVerdict::kBad: {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.malformed++;
      }
      // Framing is unrecoverable: respond and close.
      StartResponse(conn, err.http_status, kMalformedRequestCode,
                    std::string("[") + kMalformedRequestCode + "] " +
                        err.message + "\n",
                    "text/plain; charset=utf-8", /*close_conn=*/true);
      return;
    }
    case HttpParseVerdict::kDone:
      conn->in.erase(0, consumed);
      DispatchRequest(conn, std::move(req));
      return;
  }
}

void HttpServer::DispatchRequest(Conn* conn, HttpRequest req) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.requests++;
  }
  const bool draining = draining_.load(std::memory_order_acquire);
  const bool close_conn = !req.keep_alive;

  if (req.path == "/healthz") {
    if (req.method != "GET") {
      StartResponse(conn, 405, "", "method not allowed\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    StartResponse(conn, 200, "", "ok\n", "text/plain; charset=utf-8",
                  close_conn);
    return;
  }
  if (req.path == "/readyz") {
    if (req.method != "GET") {
      StartResponse(conn, 405, "", "method not allowed\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    if (draining) {
      StartResponse(conn, 503, kServiceDrainingCode,
                    std::string("[") + kServiceDrainingCode +
                        "] service draining\n",
                    "text/plain; charset=utf-8", close_conn);
    } else {
      StartResponse(conn, 200, "", "ready\n", "text/plain; charset=utf-8",
                    close_conn);
    }
    return;
  }
  if (req.path == "/stats") {
    if (req.method != "GET") {
      StartResponse(conn, 405, "", "method not allowed\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    StartResponse(conn, 200, "", StatsJson(), "application/json", close_conn);
    return;
  }
  if (req.path == "/invalidate") {
    if (req.method != "POST") {
      StartResponse(conn, 405, "", "method not allowed\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    if (draining) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.drain_refused++;
      }
      StartResponse(conn, 503, kServiceDrainingCode,
                    std::string("[") + kServiceDrainingCode +
                        "] service draining\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    StartResponse(conn, 200, "", HandleInvalidate(req), "application/json",
                  close_conn);
    return;
  }
  if (req.path == "/query") {
    if (req.method != "POST") {
      StartResponse(conn, 405, "", "method not allowed\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    if (draining) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.drain_refused++;
      }
      StartResponse(conn, 503, kServiceDrainingCode,
                    std::string("[") + kServiceDrainingCode +
                        "] service draining; retry against another instance\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    QueryRequest qreq;
    qreq.query_text = std::move(req.body);
    if (const std::string* tenant = req.FindHeader("x-xqc-tenant")) {
      qreq.tenant = *tenant;
    }
    auto parse_int_header = [&](const char* name, int64_t* out_val) {
      const std::string* v = req.FindHeader(name);
      if (v == nullptr) return true;
      int64_t parsed;
      if (!ParseInt(*v, &parsed) || parsed < 0) return false;
      *out_val = parsed;
      return true;
    };
    int64_t deadline = 0, batch = 0, par = 0;
    if (!parse_int_header("x-xqc-deadline-ms", &deadline) ||
        !parse_int_header("x-xqc-batch-size", &batch) ||
        !parse_int_header("x-xqc-parallelism", &par)) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.malformed++;
      }
      StartResponse(conn, 400, kMalformedRequestCode,
                    std::string("[") + kMalformedRequestCode +
                        "] X-XQC-* header values must be non-negative "
                        "integers\n",
                    "text/plain; charset=utf-8", close_conn);
      return;
    }
    qreq.limits.deadline_ms = deadline;
    qreq.batch_size = static_cast<int>(batch);
    qreq.parallelism = static_cast<int>(par);
    if (const std::string* npc = req.FindHeader("x-xqc-no-plan-cache")) {
      qreq.no_plan_cache = (*npc == "1" || ToLower(*npc) == "true");
    }
    conn->cancel = CancellationToken::Make();
    qreq.cancel = conn->cancel;
    conn->close_after_response = close_conn;
    conn->state = ConnState::kExecuting;
    conn->peeked_data = false;
    conn->phase_deadline = kNever;  // the service deadline governs
    executing_++;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.executing = executing_;
    }
    const uint64_t id = conn->id;
    qreq.on_done = [this, id](const QueryResponse& resp) {
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        completions_.push_back(Completion{id, resp});
      }
      const char c = 'W';
      [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
    };
    service_->Submit(std::move(qreq));  // response arrives via on_done
    return;
  }
  StartResponse(conn, 404, "", "not found\n", "text/plain; charset=utf-8",
                close_conn);
}

std::string HttpServer::HandleInvalidate(const HttpRequest& req) {
  const std::string text(TrimXmlSpace(req.body));
  const int64_t n = (text.empty() || text == "*")
                        ? service_->InvalidateAllPlans()
                        : service_->InvalidatePlan(text);
  return "{\"invalidated\": " + std::to_string(n) + "}\n";
}

std::string HttpServer::StatsJson() {
  QueryService::Counters sc = service_->counters();
  QueryService::PlanCacheStats pc = service_->plan_cache_stats();
  Counters hc = counters();
  std::string out = "{\n";
  out += "  \"http\": {";
  out += "\"accepted\": " + std::to_string(hc.accepted);
  out += ", \"accept_faults\": " + std::to_string(hc.accept_faults);
  out += ", \"accept_paused\": " + std::to_string(hc.accept_paused);
  out += ", \"requests\": " + std::to_string(hc.requests);
  out += ", \"responses_2xx\": " + std::to_string(hc.responses_2xx);
  out += ", \"responses_4xx\": " + std::to_string(hc.responses_4xx);
  out += ", \"responses_5xx\": " + std::to_string(hc.responses_5xx);
  out += ", \"malformed\": " + std::to_string(hc.malformed);
  out += ", \"drain_refused\": " + std::to_string(hc.drain_refused);
  out += ", \"timeouts_header\": " + std::to_string(hc.timeouts_header);
  out += ", \"timeouts_body\": " + std::to_string(hc.timeouts_body);
  out += ", \"timeouts_write\": " + std::to_string(hc.timeouts_write);
  out += ", \"idle_closed\": " + std::to_string(hc.idle_closed);
  out += ", \"client_closed_early\": " +
         std::to_string(hc.client_closed_early);
  out += ", \"responses_truncated\": " +
         std::to_string(hc.responses_truncated);
  out += ", \"short_writes\": " + std::to_string(hc.short_writes);
  out += ", \"stragglers_cancelled\": " +
         std::to_string(hc.stragglers_cancelled);
  out += ", \"bytes_in\": " + std::to_string(hc.bytes_in);
  out += ", \"bytes_out\": " + std::to_string(hc.bytes_out);
  out += ", \"open_connections\": " + std::to_string(hc.open_connections);
  out += ", \"executing\": " + std::to_string(hc.executing);
  out += "},\n";
  out += "  \"service\": {";
  out += "\"submitted\": " + std::to_string(sc.submitted);
  out += ", \"completed\": " + std::to_string(sc.completed);
  out += ", \"failed\": " + std::to_string(sc.failed);
  out += ", \"rejected\": " + std::to_string(sc.rejected);
  out += ", \"retries\": " + std::to_string(sc.retries);
  out += ", \"shed_in_queue\": " + std::to_string(sc.shed_in_queue);
  out += ", \"rejected_predicted\": " + std::to_string(sc.rejected_predicted);
  out += ", \"tenant_rejected\": " + std::to_string(sc.tenant_rejected);
  out += ", \"queue_depth\": " + std::to_string(service_->queue_depth());
  out += ", \"ewma_exec_ms\": " + FormatDouble(service_->ewma_exec_ms());
  out += "},\n";
  out += "  \"plan_cache\": {";
  out += "\"hits\": " + std::to_string(pc.hits);
  out += ", \"misses\": " + std::to_string(pc.misses);
  out += ", \"compiles\": " + std::to_string(pc.compiles);
  out += ", \"evictions\": " + std::to_string(pc.evictions);
  out += ", \"negative_hits\": " + std::to_string(pc.negative_hits);
  out += ", \"invalidations\": " + std::to_string(pc.invalidations);
  out += ", \"waiters_coalesced\": " + std::to_string(pc.waiters_coalesced);
  out += ", \"entries\": " + std::to_string(pc.entries);
  out += ", \"bytes\": " + std::to_string(pc.bytes);
  out += "},\n";
  out += "  \"draining\": ";
  out += draining_.load(std::memory_order_acquire) ? "true" : "false";
  out += "\n}\n";
  return out;
}

void HttpServer::StartResponse(Conn* conn, int http_status,
                               const std::string& code,
                               const std::string& body,
                               const char* content_type, bool close_conn) {
  // Crash-only drain: no keep-alive survives it. Every response written
  // while draining closes its connection, so drain completion only waits
  // on work, never on idle sockets.
  if (draining_.load(std::memory_order_acquire)) close_conn = true;
  std::string resp = "HTTP/1.1 " + std::to_string(http_status) + " " +
                     ReasonPhrase(http_status) + "\r\n";
  resp += "Content-Type: " + std::string(content_type) + "\r\n";
  resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!code.empty()) resp += "X-XQC-Code: " + code + "\r\n";
  resp += close_conn ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  resp += "\r\n";
  resp += body;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (http_status >= 500) counters_.responses_5xx++;
    else if (http_status >= 400) counters_.responses_4xx++;
    else counters_.responses_2xx++;
  }
  conn->out = std::move(resp);
  conn->out_off = 0;
  conn->close_after_response = close_conn;
  conn->state = ConnState::kWriting;
  conn->peeked_data = false;
  conn->phase_deadline =
      Clock::now() + std::chrono::milliseconds(options_.write_timeout_ms);
  NetFaultInjector* inj = options_.fault_injector;
  if (inj != nullptr && inj->mode == NetFaultMode::kMidResponseClose &&
      inj->Fire()) {
    // The client will see a truncated response followed by a close.
    conn->out.resize(conn->out.size() / 2);
    conn->close_after_response = true;
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.responses_truncated++;
  }
  HandleWritable(conn);  // opportunistic first write
}

void HttpServer::HandleWritable(Conn* conn) {
  NetFaultInjector* inj = options_.fault_injector;
  while (conn->out_off < conn->out.size()) {
    size_t want = conn->out.size() - conn->out_off;
    if (inj != nullptr && inj->mode == NetFaultMode::kShortWrite) {
      want = std::min<size_t>(want, 7);
      inj->ops.fetch_add(1, std::memory_order_relaxed);
    }
    if (inj != nullptr && inj->mode == NetFaultMode::kSlowClient) {
      if (conn->write_cooldown > Clock::now()) return;
      want = 1;
      inj->ops.fetch_add(1, std::memory_order_relaxed);
    }
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off, want,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.client_closed_early++;
      }
      CloseConn(conn->id);  // EPIPE / ECONNRESET
      return;
    }
    conn->out_off += static_cast<size_t>(n);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.bytes_out += n;
      if (static_cast<size_t>(n) < want ||
          (inj != nullptr && inj->mode == NetFaultMode::kShortWrite)) {
        counters_.short_writes++;
      }
    }
    if (inj != nullptr && inj->mode == NetFaultMode::kSlowClient) {
      conn->write_cooldown =
          Clock::now() + std::chrono::milliseconds(inj->slow_write_gap_ms);
      return;
    }
  }
  // Response fully written.
  if (conn->close_after_response) {
    CloseConn(conn->id);
    return;
  }
  conn->state = ConnState::kReadingHeaders;
  conn->out.clear();
  conn->out_off = 0;
  conn->cancel = CancellationToken();
  conn->saw_request_bytes = !conn->in.empty();
  conn->phase_deadline =
      Clock::now() +
      std::chrono::milliseconds(conn->in.empty() ? options_.idle_timeout_ms
                                                 : options_.header_timeout_ms);
  if (!conn->in.empty()) AdvanceConn(conn);  // pipelined next request
}

void HttpServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second->cancel.live()) it->second->cancel.RequestCancel();
  ::close(it->second->fd);
  conns_.erase(it);
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.open_connections = static_cast<int64_t>(conns_.size());
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    executing_--;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.executing = executing_;
    }
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // client vanished; result dropped
    Conn* conn = it->second.get();
    if (conn->state != ConnState::kExecuting) continue;
    Status status = c.resp.status;
    if (!status.ok() && status.code() == kGuardCancelledCode &&
        draining_.load(std::memory_order_acquire)) {
      // The drain-grace straggler cancellation is a lifecycle event, not
      // a query error: surface it to the client as "service draining".
      status = Status::ResourceExhausted(
          kServiceDrainingCode,
          "service draining: request cancelled after the drain grace "
          "period");
    }
    const int http_status = HttpStatusForQueryStatus(status);
    std::string body =
        status.ok() ? c.resp.result : status.ToString() + "\n";
    StartResponse(it->second.get(), http_status,
                  status.ok() ? std::string() : status.code(), body,
                  "text/plain; charset=utf-8", conn->close_after_response);
  }
}

Clock::time_point HttpServer::NextDeadline() const {
  Clock::time_point next = kNever;
  for (const auto& [id, conn] : conns_) {
    if (conn->phase_deadline < next) next = conn->phase_deadline;
    if (conn->state == ConnState::kWriting &&
        conn->write_cooldown != Clock::time_point() &&
        conn->write_cooldown < next) {
      next = conn->write_cooldown;
    }
  }
  if (draining_.load(std::memory_order_acquire) && !stragglers_cancelled_ &&
      drain_started_ != Clock::time_point()) {
    Clock::time_point grace =
        drain_started_ + std::chrono::milliseconds(options_.drain_grace_ms);
    if (grace < next) next = grace;
  }
  return next;
}

void HttpServer::EnforceTimeouts() {
  const Clock::time_point now = Clock::now();
  std::vector<uint64_t> doomed;
  for (auto& [id, conn] : conns_) {
    if (conn->phase_deadline == kNever || now < conn->phase_deadline) {
      continue;
    }
    doomed.push_back(id);
  }
  for (uint64_t id : doomed) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    switch (conn->state) {
      case ConnState::kReadingHeaders:
        if (conn->saw_request_bytes) {
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            counters_.timeouts_header++;
          }
          // Best-effort 408: one nonblocking write, then the close. A
          // slowloris peer may never read it; that's its problem.
          const char kTimeout[] =
              "HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n"
              "Connection: close\r\n\r\n";
          [[maybe_unused]] ssize_t n =
              ::send(conn->fd, kTimeout, sizeof(kTimeout) - 1, MSG_NOSIGNAL);
        } else {
          std::lock_guard<std::mutex> lock(counters_mu_);
          counters_.idle_closed++;
        }
        break;
      case ConnState::kReadingBody: {
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          counters_.timeouts_body++;
        }
        const char kTimeout[] =
            "HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        [[maybe_unused]] ssize_t n =
            ::send(conn->fd, kTimeout, sizeof(kTimeout) - 1, MSG_NOSIGNAL);
        break;
      }
      case ConnState::kWriting: {
        std::lock_guard<std::mutex> lock(counters_mu_);
        counters_.timeouts_write++;
        break;
      }
      case ConnState::kExecuting:
        break;  // kNever; unreachable
    }
    CloseConn(id);
  }
  // Drain grace expired: cancel executing stragglers (their completions
  // will surface as XQC0012), and shed connections still reading — they
  // have nothing admitted, and waiting out a 10s body timeout would hold
  // the whole drain hostage.
  if (draining_.load(std::memory_order_acquire) && !stragglers_cancelled_ &&
      drain_started_ != Clock::time_point() &&
      now >= drain_started_ +
                 std::chrono::milliseconds(options_.drain_grace_ms)) {
    stragglers_cancelled_ = true;
    std::vector<uint64_t> readers;
    int64_t cancelled = 0;
    for (auto& [id, conn] : conns_) {
      if (conn->state == ConnState::kExecuting && conn->cancel.live()) {
        conn->cancel.RequestCancel();
        cancelled++;
      } else if (conn->state == ConnState::kReadingHeaders ||
                 conn->state == ConnState::kReadingBody) {
        readers.push_back(id);
      }
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.stragglers_cancelled += cancelled;
    }
    for (uint64_t id : readers) CloseConn(id);
  }
}

void HttpServer::CheckDrained() {
  if (!draining_.load(std::memory_order_acquire)) return;
  bool completions_pending;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_pending = !completions_.empty();
  }
  if (conns_.empty() && executing_ == 0 && !completions_pending) {
    std::lock_guard<std::mutex> lock(drained_mu_);
    fully_drained_ = true;
    drained_cv_.notify_all();
  }
}

}  // namespace xqc
