// Deterministic socket-level fault injection for the HTTP front end,
// extending the fault-injection family (GuardFaultInjector for the
// engines, IoFaultInjector for storage) to the wire. Every HttpServer
// failure path — accept failures, clients that stall mid-request, kernels
// that accept only short writes, connections that vanish mid-response,
// clients that drain responses one byte at a time — is drivable from
// tests without a misbehaving peer.
//
// An injector is installed in HttpServerOptions::fault_injector and
// consulted by the event loop at each faultable operation. Counters are
// atomic so tests can share one injector across runs.
#ifndef XQC_NET_NET_FAULT_H_
#define XQC_NET_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace xqc {

enum class NetFaultMode : uint8_t {
  kNone,
  /// accept() "fails": the accepted socket is immediately closed and
  /// counted, as if the kernel had returned EMFILE. The accept loop must
  /// log, back off nothing, and keep serving existing connections.
  kAcceptFail,
  /// Every send() transfers at most 7 bytes — responses trickle out in
  /// many partial writes. The write path must track offsets correctly and
  /// deliver byte-identical responses, just slower.
  kShortWrite,
  /// Reads return no data (as if the client stopped sending mid-request).
  /// The header/body read timeouts must evict the connection; nothing may
  /// hang or leak.
  kStalledRead,
  /// The connection is hard-closed after writing roughly half of each
  /// response — the client sees a truncated response, the server must
  /// clean up the connection and count the truncation.
  kMidResponseClose,
  /// Simulates a client draining 1 byte per 10ms (a full socket buffer):
  /// each send() transfers one byte and the connection then waits out a
  /// write cooldown. Large responses must hit the write timeout and be
  /// evicted rather than pinning the loop.
  kSlowClient,
};

struct NetFaultInjector {
  NetFaultMode mode = NetFaultMode::kNone;
  /// 0 = every matching operation faults; otherwise only the first n.
  int64_t fail_n = 0;
  /// kSlowClient: cooldown between 1-byte writes.
  int64_t slow_write_gap_ms = 10;
  /// Matching operations observed (diagnostics; shared across threads).
  std::atomic<int64_t> ops{0};

  /// Draws the next operation number and says whether it faults.
  bool Fire() {
    const int64_t n = ops.fetch_add(1, std::memory_order_relaxed) + 1;
    return fail_n <= 0 || n <= fail_n;
  }
};

/// Parses a mode name ("none", "accept-fail", "short-write",
/// "stalled-read", "mid-response-close", "slow-client") — used by the
/// XQC_NET_FAULT_MODE environment sweep in scripts/check.sh.
inline bool NetFaultModeFromName(std::string_view name, NetFaultMode* out) {
  if (name == "none") *out = NetFaultMode::kNone;
  else if (name == "accept-fail") *out = NetFaultMode::kAcceptFail;
  else if (name == "short-write") *out = NetFaultMode::kShortWrite;
  else if (name == "stalled-read") *out = NetFaultMode::kStalledRead;
  else if (name == "mid-response-close") *out = NetFaultMode::kMidResponseClose;
  else if (name == "slow-client") *out = NetFaultMode::kSlowClient;
  else return false;
  return true;
}

}  // namespace xqc

#endif  // XQC_NET_NET_FAULT_H_
