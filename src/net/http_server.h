// A from-scratch, robustness-first HTTP/1.1 front end for QueryService
// (ROADMAP item 4): queries arrive over a wire, with the same overload
// and fault discipline the storage tier got in PRs 5–8.
//
// Endpoints:
//   POST /query       body = XQuery text; result (or coded error) in the
//                     response body. Per-request knobs ride in headers:
//                     X-XQC-Tenant, X-XQC-Deadline-Ms, X-XQC-Batch-Size,
//                     X-XQC-Parallelism, X-XQC-No-Plan-Cache: 1.
//   POST /invalidate  body = query text to drop from the plan cache;
//                     empty body or "*" empties the cache.
//   GET  /stats       JSON: service counters, plan-cache stats, HTTP
//                     counters, EWMA, queue depth.
//   GET  /healthz     200 while the process is alive (even draining).
//   GET  /readyz      200 while accepting work; 503 [XQC0012] once
//                     draining — the load-balancer signal.
//
// Engineering posture (every line assumes a hostile or broken peer):
//   * One event-loop thread multiplexing all sockets with poll();
//     execution happens on the QueryService worker pool, which calls back
//     through QueryRequest::on_done + a self-pipe wakeup. No thread per
//     connection, no blocking call anywhere in the loop.
//   * Per-connection phase timeouts: header (slowloris defense), body
//     read, response write, and keep-alive idle. A connection that stops
//     making progress is evicted with 408 (where a response is still
//     possible) or a plain close.
//   * Hard caps: connection count (accept-loop backpressure — the
//     listener is not polled while at capacity or while the admission
//     queue is saturated), header bytes, body bytes, header count.
//   * Strict parsing: every malformed input maps to a 4xx carrying
//     XQC0013 — never a crash, never a hang, never an unbounded buffer.
//     Framing violations close the connection (resync is impossible);
//     well-formed errors keep it alive.
//   * Crash-only drain (SIGTERM/SIGINT via RequestDrainFromSignal, or
//     BeginDrain): stop accepting, flip /readyz, refuse new requests with
//     503 [XQC0012], let in-flight requests finish within their
//     deadlines, then cancel stragglers after drain_grace_ms via their
//     CancellationTokens (surfaced to clients as XQC0012). There is no
//     "flush" step that can wedge: Stop() always returns.
//   * NetFaultInjector (net_fault.h) drives every failure path
//     deterministically, like IoFaultInjector does for storage.
#ifndef XQC_NET_HTTP_SERVER_H_
#define XQC_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/net_fault.h"
#include "src/service/query_service.h"

namespace xqc {

// ---- Request parsing (exposed for the adversarial corpus in
// ---- tests/http_test.cc; the server consumes it incrementally) --------

struct HttpRequest {
  std::string method;        // e.g. "POST"
  std::string target;        // raw request target, e.g. "/query?x=1"
  std::string path;          // percent-decoded target up to '?'
  std::string query_string;  // raw bytes after '?' (may be empty)
  bool http11 = true;        // false = HTTP/1.0
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased keys
  std::string body;
  bool keep_alive = true;  // after Connection/version rules

  /// First value of `name` (lowercase), or nullptr.
  const std::string* FindHeader(const std::string& name) const;
};

struct HttpParseLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_headers = 100;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

enum class HttpParseVerdict {
  kNeedMore,  // valid so far; feed more bytes
  kDone,      // *out filled; *consumed bytes of `in` were used
  kBad,       // protocol violation; *err filled; close after responding
};

struct HttpParseError {
  int http_status = 400;  // 400, 413, or 431
  std::string message;    // human detail; served as "[XQC0013] <message>"
};

/// Incremental strict HTTP/1.1 request parser. `in` is the connection's
/// cumulative unconsumed read buffer; on kDone, `*consumed` says how many
/// bytes belonged to this request (the rest is pipelined input for the
/// next one). Enforces CRLF line endings, token-only method/header names,
/// a single consistent Content-Length, chunked framing with bounded chunk
/// lines and discarded trailers, the byte caps in `limits`, and rejects
/// NUL/control bytes anywhere in the envelope.
HttpParseVerdict ParseHttpRequest(std::string_view in,
                                  const HttpParseLimits& limits,
                                  HttpRequest* out, size_t* consumed,
                                  HttpParseError* err);

/// The HTTP status an engine/service Status maps to (200 for OK; 4xx for
/// query-owned failures, 429/503/504 for load and lifecycle, 502 for
/// backend I/O). Exposed for tests.
int HttpStatusForQueryStatus(const Status& s);

// ---- Server ----------------------------------------------------------

struct HttpServerOptions {
  /// Bind address (IPv4 dotted quad) and port; port 0 = ephemeral (read
  /// the bound port back with port()).
  std::string bind_address = "127.0.0.1";
  int port = 0;
  int listen_backlog = 128;

  /// Connection cap: the listener is not polled while this many
  /// connections are open (accept-loop backpressure; the kernel backlog
  /// absorbs short bursts).
  int max_connections = 256;
  /// Also pause accepting while QueryService::queue_depth() is at the
  /// service's max_queue (admission saturation should push back on the
  /// socket, not manufacture instant 429s for everything buffered).
  bool accept_backpressure = true;

  /// Phase timeouts (ms). header: first request byte -> blank line
  /// (slowloris defense). read: body. write: whole response. idle:
  /// keep-alive connection with no request in flight.
  int64_t header_timeout_ms = 5000;
  int64_t read_timeout_ms = 10000;
  int64_t write_timeout_ms = 10000;
  int64_t idle_timeout_ms = 30000;

  /// Envelope caps (see HttpParseLimits).
  size_t max_header_bytes = 16 * 1024;
  size_t max_headers = 100;
  size_t max_body_bytes = 1 * 1024 * 1024;

  /// Drain: how long in-flight requests get after BeginDrain before their
  /// cancellation tokens fire.
  int64_t drain_grace_ms = 5000;

  /// Deterministic socket fault injection (tests only; non-owning).
  NetFaultInjector* fault_injector = nullptr;
};

class HttpServer {
 public:
  /// `service` must outlive the server. The server never owns or shuts
  /// down the QueryService — drain order is: server.Stop() (no more wire
  /// traffic), then service.Shutdown().
  HttpServer(HttpServerOptions options, QueryService* service);
  ~HttpServer();  // Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the event loop. Returns a kIOError status
  /// when the socket can't be set up (port in use, bad address).
  Status Start();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Crash-only drain: closes the listener, flips /readyz to 503, refuses
  /// new requests with XQC0012, and arms the drain-grace cancellation of
  /// stragglers. Idempotent, non-blocking, callable from any thread.
  void BeginDrain();

  /// Async-signal-safe drain trigger for SIGTERM/SIGINT handlers: one
  /// write(2) on the self-pipe. The event loop performs BeginDrain.
  void RequestDrainFromSignal();

  /// Waits until every connection is closed and every in-flight request
  /// has completed, or `timeout_ms` elapsed. Returns whether fully
  /// drained.
  bool WaitDrained(int64_t timeout_ms);

  /// BeginDrain + wait out the grace + force-close whatever is left +
  /// join the loop. Always returns; idempotent; called by the destructor.
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Monotonic wire-level counters (gauges noted). Safe to read any time.
  struct Counters {
    int64_t accepted = 0;          // connections accepted
    int64_t accept_faults = 0;     // injected/real accept failures survived
    int64_t accept_paused = 0;     // poll cycles with the listener parked
    int64_t requests = 0;          // well-formed requests routed
    int64_t responses_2xx = 0;
    int64_t responses_4xx = 0;
    int64_t responses_5xx = 0;
    int64_t malformed = 0;         // XQC0013 verdicts (subset of 4xx)
    int64_t drain_refused = 0;     // XQC0012 responses
    int64_t timeouts_header = 0;   // slowloris evictions
    int64_t timeouts_body = 0;
    int64_t timeouts_write = 0;
    int64_t idle_closed = 0;
    int64_t client_closed_early = 0;  // peer vanished mid request/response
    int64_t responses_truncated = 0;  // kMidResponseClose faults
    int64_t short_writes = 0;         // partial send()s observed
    int64_t stragglers_cancelled = 0; // drain-grace cancellations
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t open_connections = 0;  // gauge
    int64_t executing = 0;         // gauge: requests inside QueryService
  };
  Counters counters() const;

 private:
  enum class ConnState : uint8_t {
    kReadingHeaders,  // also keep-alive idle (buffer empty, no bytes yet)
    kReadingBody,     // implied by ParseHttpRequest needing body bytes
    kExecuting,       // submitted to QueryService; awaiting on_done
    kWriting,         // response bytes pending
  };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    ConnState state = ConnState::kReadingHeaders;
    std::string in;   // unconsumed request bytes (may hold pipelined next)
    std::string out;  // response bytes not yet written
    size_t out_off = 0;
    bool saw_request_bytes = false;  // idle vs header timeout
    bool close_after_response = false;
    bool peeked_data = false;  // kExecuting: stop polling POLLIN busily
    std::chrono::steady_clock::time_point phase_deadline{};
    std::chrono::steady_clock::time_point write_cooldown{};  // kSlowClient
    CancellationToken cancel;  // live while kExecuting
  };

  struct Completion {
    uint64_t conn_id = 0;
    QueryResponse resp;
  };

  void RunLoop();
  void DoBeginDrainLocked();  // loop-thread half of BeginDrain
  void AcceptReady();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  /// Parses as many buffered bytes as possible; dispatches or responds.
  void AdvanceConn(Conn* conn);
  void DispatchRequest(Conn* conn, HttpRequest req);
  std::string HandleInvalidate(const HttpRequest& req);
  std::string StatsJson();
  /// Queues `body` for writing and transitions to kWriting.
  void StartResponse(Conn* conn, int http_status, const std::string& code,
                     const std::string& body, const char* content_type,
                     bool close_conn);
  void CloseConn(uint64_t id);
  /// Applies completions the workers queued, matching conns by id.
  void DrainCompletions();
  std::chrono::steady_clock::time_point NextDeadline() const;
  void EnforceTimeouts();
  void CheckDrained();

  HttpServerOptions options_;
  QueryService* service_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_r_ = -1, wake_w_ = -1;  // self-pipe (also the signal path)
  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point drain_started_{};
  bool stragglers_cancelled_ = false;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  int64_t executing_ = 0;  // loop-thread owned; mirrored into counters

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  mutable std::mutex counters_mu_;
  Counters counters_;

  std::mutex drained_mu_;
  std::condition_variable drained_cv_;
  bool fully_drained_ = false;
};

}  // namespace xqc

#endif  // XQC_NET_HTTP_SERVER_H_
