// A deliberately small blocking HTTP/1.1 client for tests and the bench
// harness — connect, send one or more requests, read framed responses.
// It is NOT a general client: no TLS, no redirects, no proxies. What it
// does have is what the adversarial tests need: raw-byte sends (to write
// malformed requests onto the wire verbatim), partial sends with pauses
// (to *be* the slowloris), half-close, and strict response parsing that
// distinguishes a clean close from a truncated one.
#ifndef XQC_NET_HTTP_CLIENT_H_
#define XQC_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace xqc {

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased keys
  std::string body;
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& name) const;
};

/// One TCP connection to an HttpServer. Methods return kIOError statuses
/// on socket failures; response framing violations (which a correct
/// server never produces) are kIOError too.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends raw bytes verbatim (for malformed-request tests).
  Status SendRaw(const std::string& bytes);
  /// Shuts down the write side, signalling EOF while still reading.
  void HalfClose();

  /// Reads one framed response (Content-Length or close-delimited).
  /// `timeout_ms` bounds the whole read. A clean EOF before any byte of
  /// a response yields kIOError with message "closed".
  Status ReadResponse(HttpResponse* out, int64_t timeout_ms = 10000);

  /// Convenience: send a well-formed request and read the response.
  Status Request(const std::string& method, const std::string& target,
                 const std::vector<std::pair<std::string, std::string>>&
                     headers,
                 const std::string& body, HttpResponse* out,
                 int64_t timeout_ms = 10000);

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the previous response
};

/// One-shot helper: connect, request, read, close.
Status HttpFetch(const std::string& host, int port, const std::string& method,
                 const std::string& target,
                 const std::vector<std::pair<std::string, std::string>>&
                     headers,
                 const std::string& body, HttpResponse* out,
                 int64_t timeout_ms = 10000);

}  // namespace xqc

#endif  // XQC_NET_HTTP_CLIENT_H_
