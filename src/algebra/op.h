// The complete XQuery logical algebra (Table 1 of the paper).
//
// An operator is written  Op[p1,...]{DOp1,...}(Op1,...):  static parameters
// in brackets, dependent sub-operators in braces (their evaluation receives
// the IN value — a tuple or an item — from the parent), independent inputs
// in parentheses. Plans are trees of Op nodes; kIn is the IN leaf.
//
// Operators are grouped exactly as in the paper: XML operators
// (constructors, navigation, type operators, functional operators, I/O),
// tuple operators (constructors, select/project/join, maps,
// grouping/sorting), and the four XML/tuple boundary operators.
#ifndef XQC_ALGEBRA_OP_H_
#define XQC_ALGEBRA_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/symbol.h"
#include "src/types/seqtype.h"
#include "src/xml/atomic.h"
#include "src/xml/axes.h"

namespace xqc {

enum class OpKind : uint8_t {
  // ---- XML operators: constructors ----
  kSequence,      // Sequence(S(i1), S(i2)) -> S(i3)
  kEmpty,         // Empty() -> ()
  kScalar,        // Scalar[a]() -> a
  kElement,       // Element[q](S(i))
  kAttribute,     // Attribute[q](S(a))
  kText,          // Text(a)
  kComment,       // Comment(a)
  kPI,            // PI(a)
  kDocumentNode,  // document constructor (needed for computed doc ctors)
  // ---- XML operators: navigation, projection ----
  kTreeJoin,      // TreeJoin[axis,nodetest](S(i)) -> S(i), doc order
  kTreeProject,   // TreeProject[paths](i) -> i
  // ---- XML operators: type operators ----
  kCastable,      // Castable[Type](a) -> boolean
  kCast,          // Cast[Type](a) -> a
  kValidate,      // Validate[Type](i) -> i
  kTypeMatches,   // TypeMatches[Type](S(i)) -> boolean
  kTypeAssert,    // TypeAssert[Type](S(i)) -> S(i)
  // ---- XML operators: functional ----
  kVar,           // Var[q]() — algebra-context variable (param/global)
  kCall,          // Call[q](S(i1),...,S(in))
  kCond,          // Cond{S(i1),S(i2)}(boolean)
  // ---- XML operators: I/O ----
  kParse,         // Parse(URI)
  kSerialize,     // Serialize(URI, S(i))
  // ---- the IN leaf ----
  kIn,            // dependent input (tuple or item, resolved by context)
  // ---- tuple operators: constructors ----
  kTupleConstruct,  // [q1,...,qn](S(i1),...,S(in)) -> tuple
  kTupleConcat,     // ++(t1, t2)
  kEmptyTuples,     // ([]) — the table holding one empty tuple
  // ---- tuple operators: select, project, join ----
  kFieldAccess,   // #q(t) -> S(i)
  kSelect,        // Select{t->bool}(S(t))
  kProduct,       // Product(S(t1), S(t2))
  kJoin,          // Join{t1++t2->bool}(S(t1),S(t2))
  kLOuterJoin,    // LOuterJoin[q]{t1++t2->bool}(S(t1),S(t2))
  // ---- tuple operators: maps ----
  kMap,           // Map{t1->t2}(S(t1))
  kOMap,          // OMap[q](S(t1)) — null-flag map
  kMapConcat,     // MapConcat{t1->S(t2)}(S(t1)) — dependent join
  kOMapConcat,    // OMapConcat[q]{t1->S(t2)}(S(t1))
  kMapIndex,      // MapIndex[q](S(t))
  kMapIndexStep,  // MapIndexStep[q](S(t))
  // ---- tuple operators: grouping, sorting ----
  kOrderBy,       // OrderBy{t,t->bool}(S(t))
  kGroupBy,       // GroupBy[qAgg,qIndices,qNulls]{S(t)->i}{t->i}(S(t))
  // ---- XML/tuple boundary ----
  kMapFromItem,   // MapFromItem{i->t}(S(i)) -> S(t)
  kMapToItem,     // MapToItem{t->i}(S(t)) -> S(i)
  kMapSome,       // MapSome{t->bool}(S(t)) -> boolean
  kMapEvery,      // MapEvery{t->bool}(S(t)) -> boolean
};

const char* OpKindName(OpKind k);

struct Op;
using OpPtr = std::shared_ptr<Op>;

/// One order-by key of the OrderBy operator (dependent sub-operator).
struct OrderSpecOp {
  OpPtr key;
  bool descending = false;
  bool empty_greatest = false;
};

/// An algebra operator node.
///
/// Field usage by kind:
///  - `literal`: kScalar value
///  - `name`: Element/Attribute/PI name, Var/Call q, the field q of
///    FieldAccess / OMap / OMapConcat / LOuterJoin / MapIndex /
///    MapIndexStep, and the qAgg field of GroupBy
///  - `fields`: kTupleConstruct field names; kGroupBy index fields
///  - `fields2`: kGroupBy null-flag fields
///  - `stype`: the [Type] parameter of type operators
///  - `axis`/`ntest`: kTreeJoin
///  - `paths`: kTreeProject projection paths
///  - `deps`: dependent sub-operators {}; for kGroupBy deps[0] is the
///    post-grouping operator (applied to each partition's item sequence)
///    and deps[1] the pre-grouping operator (applied per tuple) — the
///    paper's GroupBy[..]{Op2}{Op1}(Op0) order
///  - `inputs`: independent inputs ()
///  - `specs`: kOrderBy keys
struct Op {
  OpKind kind;

  AtomicValue literal;
  Symbol name;
  std::vector<Symbol> fields;
  std::vector<Symbol> fields2;
  SequenceType stype;
  Axis axis = Axis::kChild;
  ItemTest ntest;
  DdoMode ddo = DdoMode::kSort;  // kTreeJoin: inferred by AnnotateDdo
  std::vector<std::string> paths;
  std::vector<OpPtr> deps;
  std::vector<OpPtr> inputs;
  std::vector<OrderSpecOp> specs;
};

// ---- factory helpers --------------------------------------------------------

OpPtr MakeOp(OpKind kind);
OpPtr OpIn();
OpPtr OpEmpty();
OpPtr OpEmptyTuples();
OpPtr OpScalar(AtomicValue v);
OpPtr OpVar(Symbol q);
OpPtr OpCall(Symbol q, std::vector<OpPtr> args);
OpPtr OpFieldAccess(Symbol q, OpPtr input);      // #q(input)
OpPtr OpInField(Symbol q);                       // IN#q
OpPtr OpTupleConstruct(std::vector<Symbol> fields, std::vector<OpPtr> values);
OpPtr OpSelect(OpPtr pred, OpPtr input);
OpPtr OpProduct(OpPtr left, OpPtr right);
OpPtr OpJoin(OpPtr pred, OpPtr left, OpPtr right);
OpPtr OpLOuterJoin(Symbol null_field, OpPtr pred, OpPtr left, OpPtr right);
OpPtr OpMapConcat(OpPtr dep, OpPtr input);
OpPtr OpOMap(Symbol null_field, OpPtr input);
OpPtr OpOMapConcat(Symbol null_field, OpPtr dep, OpPtr input);
OpPtr OpMapIndex(Symbol field, OpPtr input);
OpPtr OpMapIndexStep(Symbol field, OpPtr input);
OpPtr OpMapFromItem(OpPtr dep, OpPtr input);
OpPtr OpMapToItem(OpPtr dep, OpPtr input);
OpPtr OpGroupBy(Symbol agg, std::vector<Symbol> indices,
                std::vector<Symbol> nulls, OpPtr post, OpPtr pre, OpPtr input);
OpPtr OpTreeJoin(Axis axis, ItemTest test, OpPtr input);
OpPtr OpTypeAssert(SequenceType t, OpPtr input);
OpPtr OpCond(OpPtr then_branch, OpPtr else_branch, OpPtr cond);

/// Deep copy of a plan.
OpPtr CloneOp(const Op& op);

/// Structural equality of two plans (used by rewriting tests).
bool OpEquals(const Op& a, const Op& b);

/// Prints a plan in the paper's notation, e.g.
///   MapConcat{MapFromItem{[p:IN]}(TreeJoin[descendant::person](Var[auction]))}(IN)
/// With `indent` >= 0, pretty-prints with line breaks.
std::string OpToString(const Op& op, bool pretty = false);

/// True iff the operator kind rebinds IN for its dependent sub-operators
/// (maps, selects, joins, group-by, boundary maps). Cond and constructors
/// pass the enclosing IN through to their dependents.
bool RebindsIn(OpKind k);

/// True iff the plan contains a free occurrence of IN — i.e., one not bound
/// by an enclosing dependent-rebinding operator inside the plan. The
/// (insert product) rewriting's "Op1 independent of IN" side condition.
bool FreeIn(const Op& op);

/// Collects fields q appearing as free IN#q accesses in the plan.
void CollectFreeInFields(const Op& op, std::vector<Symbol>* out);

/// Conservative dataflow summary for join-side analysis: the set of tuple
/// fields the plan may read from the enclosing IN tuple — every FieldAccess
/// name in the subtree minus the fields the subtree introduces itself
/// (tuple-constructor fields, index/null/aggregate fields). Sound because
/// compiled plans use globally unique field names.
void CollectOuterFieldUses(const Op& op, std::vector<Symbol>* out);

}  // namespace xqc

#endif  // XQC_ALGEBRA_OP_H_
