#include "src/algebra/op.h"

#include <set>
#include <sstream>

namespace xqc {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kSequence: return "Sequence";
    case OpKind::kEmpty: return "Empty";
    case OpKind::kScalar: return "Scalar";
    case OpKind::kElement: return "Element";
    case OpKind::kAttribute: return "Attribute";
    case OpKind::kText: return "Text";
    case OpKind::kComment: return "Comment";
    case OpKind::kPI: return "PI";
    case OpKind::kDocumentNode: return "DocumentNode";
    case OpKind::kTreeJoin: return "TreeJoin";
    case OpKind::kTreeProject: return "TreeProject";
    case OpKind::kCastable: return "Castable";
    case OpKind::kCast: return "Cast";
    case OpKind::kValidate: return "Validate";
    case OpKind::kTypeMatches: return "TypeMatches";
    case OpKind::kTypeAssert: return "TypeAssert";
    case OpKind::kVar: return "Var";
    case OpKind::kCall: return "Call";
    case OpKind::kCond: return "Cond";
    case OpKind::kParse: return "Parse";
    case OpKind::kSerialize: return "Serialize";
    case OpKind::kIn: return "IN";
    case OpKind::kTupleConstruct: return "TupleConstruct";
    case OpKind::kTupleConcat: return "++";
    case OpKind::kEmptyTuples: return "[]";
    case OpKind::kFieldAccess: return "#";
    case OpKind::kSelect: return "Select";
    case OpKind::kProduct: return "Product";
    case OpKind::kJoin: return "Join";
    case OpKind::kLOuterJoin: return "LOuterJoin";
    case OpKind::kMap: return "Map";
    case OpKind::kOMap: return "OMap";
    case OpKind::kMapConcat: return "MapConcat";
    case OpKind::kOMapConcat: return "OMapConcat";
    case OpKind::kMapIndex: return "MapIndex";
    case OpKind::kMapIndexStep: return "MapIndexStep";
    case OpKind::kOrderBy: return "OrderBy";
    case OpKind::kGroupBy: return "GroupBy";
    case OpKind::kMapFromItem: return "MapFromItem";
    case OpKind::kMapToItem: return "MapToItem";
    case OpKind::kMapSome: return "MapSome";
    case OpKind::kMapEvery: return "MapEvery";
  }
  return "?";
}

OpPtr MakeOp(OpKind kind) {
  auto op = std::make_shared<Op>();
  op->kind = kind;
  return op;
}

OpPtr OpIn() { return MakeOp(OpKind::kIn); }
OpPtr OpEmpty() { return MakeOp(OpKind::kEmpty); }
OpPtr OpEmptyTuples() { return MakeOp(OpKind::kEmptyTuples); }

OpPtr OpScalar(AtomicValue v) {
  OpPtr op = MakeOp(OpKind::kScalar);
  op->literal = std::move(v);
  return op;
}

OpPtr OpVar(Symbol q) {
  OpPtr op = MakeOp(OpKind::kVar);
  op->name = q;
  return op;
}

OpPtr OpCall(Symbol q, std::vector<OpPtr> args) {
  OpPtr op = MakeOp(OpKind::kCall);
  op->name = q;
  op->inputs = std::move(args);
  return op;
}

OpPtr OpFieldAccess(Symbol q, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kFieldAccess);
  op->name = q;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpInField(Symbol q) { return OpFieldAccess(q, OpIn()); }

OpPtr OpTupleConstruct(std::vector<Symbol> fields, std::vector<OpPtr> values) {
  OpPtr op = MakeOp(OpKind::kTupleConstruct);
  op->fields = std::move(fields);
  op->inputs = std::move(values);
  return op;
}

OpPtr OpSelect(OpPtr pred, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kSelect);
  op->deps = {std::move(pred)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpProduct(OpPtr left, OpPtr right) {
  OpPtr op = MakeOp(OpKind::kProduct);
  op->inputs = {std::move(left), std::move(right)};
  return op;
}

OpPtr OpJoin(OpPtr pred, OpPtr left, OpPtr right) {
  OpPtr op = MakeOp(OpKind::kJoin);
  op->deps = {std::move(pred)};
  op->inputs = {std::move(left), std::move(right)};
  return op;
}

OpPtr OpLOuterJoin(Symbol null_field, OpPtr pred, OpPtr left, OpPtr right) {
  OpPtr op = MakeOp(OpKind::kLOuterJoin);
  op->name = null_field;
  op->deps = {std::move(pred)};
  op->inputs = {std::move(left), std::move(right)};
  return op;
}

OpPtr OpMapConcat(OpPtr dep, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kMapConcat);
  op->deps = {std::move(dep)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpOMap(Symbol null_field, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kOMap);
  op->name = null_field;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpOMapConcat(Symbol null_field, OpPtr dep, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kOMapConcat);
  op->name = null_field;
  op->deps = {std::move(dep)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpMapIndex(Symbol field, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kMapIndex);
  op->name = field;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpMapIndexStep(Symbol field, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kMapIndexStep);
  op->name = field;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpMapFromItem(OpPtr dep, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kMapFromItem);
  op->deps = {std::move(dep)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpMapToItem(OpPtr dep, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kMapToItem);
  op->deps = {std::move(dep)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpGroupBy(Symbol agg, std::vector<Symbol> indices,
                std::vector<Symbol> nulls, OpPtr post, OpPtr pre,
                OpPtr input) {
  OpPtr op = MakeOp(OpKind::kGroupBy);
  op->name = agg;
  op->fields = std::move(indices);
  op->fields2 = std::move(nulls);
  op->deps = {std::move(post), std::move(pre)};
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpTreeJoin(Axis axis, ItemTest test, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kTreeJoin);
  op->axis = axis;
  op->ntest = test;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpTypeAssert(SequenceType t, OpPtr input) {
  OpPtr op = MakeOp(OpKind::kTypeAssert);
  op->stype = t;
  op->inputs = {std::move(input)};
  return op;
}

OpPtr OpCond(OpPtr then_branch, OpPtr else_branch, OpPtr cond) {
  OpPtr op = MakeOp(OpKind::kCond);
  op->deps = {std::move(then_branch), std::move(else_branch)};
  op->inputs = {std::move(cond)};
  return op;
}

OpPtr CloneOp(const Op& op) {
  OpPtr out = std::make_shared<Op>(op);
  for (OpPtr& d : out->deps) d = CloneOp(*d);
  for (OpPtr& i : out->inputs) i = CloneOp(*i);
  for (OrderSpecOp& s : out->specs) s.key = CloneOp(*s.key);
  return out;
}

bool OpEquals(const Op& a, const Op& b) {
  if (a.kind != b.kind || a.name != b.name || a.fields != b.fields ||
      a.fields2 != b.fields2 || a.axis != b.axis || !(a.ntest == b.ntest) ||
      !(a.stype == b.stype) || a.paths != b.paths ||
      a.deps.size() != b.deps.size() || a.inputs.size() != b.inputs.size() ||
      a.specs.size() != b.specs.size()) {
    return false;
  }
  if (a.kind == OpKind::kScalar && !a.literal.StrictEquals(b.literal)) {
    return false;
  }
  for (size_t i = 0; i < a.deps.size(); i++) {
    if (!OpEquals(*a.deps[i], *b.deps[i])) return false;
  }
  for (size_t i = 0; i < a.inputs.size(); i++) {
    if (!OpEquals(*a.inputs[i], *b.inputs[i])) return false;
  }
  for (size_t i = 0; i < a.specs.size(); i++) {
    if (a.specs[i].descending != b.specs[i].descending ||
        a.specs[i].empty_greatest != b.specs[i].empty_greatest ||
        !OpEquals(*a.specs[i].key, *b.specs[i].key)) {
      return false;
    }
  }
  return true;
}

namespace {

void Print(const Op& op, bool pretty, int depth, std::ostringstream& os) {
  auto nl = [&](int d) {
    if (pretty) {
      os << "\n";
      for (int i = 0; i < d; i++) os << "  ";
    }
  };
  auto plist = [&](const std::vector<OpPtr>& ops, const char* open,
                   const char* close) {
    os << open;
    for (size_t i = 0; i < ops.size(); i++) {
      if (i > 0) os << ",";
      nl(depth + 1);
      Print(*ops[i], pretty, depth + 1, os);
    }
    os << close;
  };
  auto fieldlist = [&](const std::vector<Symbol>& fs) {
    os << "[";
    for (size_t i = 0; i < fs.size(); i++) {
      if (i > 0) os << ",";
      os << fs[i].str();
    }
    os << "]";
  };

  switch (op.kind) {
    case OpKind::kIn:
      os << "IN";
      return;
    case OpKind::kEmpty:
      os << "Empty()";
      return;
    case OpKind::kEmptyTuples:
      os << "([])";
      return;
    case OpKind::kScalar:
      if (op.literal.type() == AtomicType::kString ||
          op.literal.type() == AtomicType::kUntypedAtomic) {
        os << "\"" << op.literal.Lexical() << "\"";
      } else {
        os << op.literal.Lexical();
      }
      return;
    case OpKind::kVar:
      os << "Var[" << op.name.str() << "]";
      return;
    case OpKind::kFieldAccess:
      // IN#q prints in the paper's inline form.
      if (op.inputs[0]->kind == OpKind::kIn) {
        os << "IN#" << op.name.str();
      } else {
        Print(*op.inputs[0], pretty, depth, os);
        os << "#" << op.name.str();
      }
      return;
    case OpKind::kTupleConstruct: {
      os << "[";
      for (size_t i = 0; i < op.fields.size(); i++) {
        if (i > 0) os << ";";
        os << op.fields[i].str() << ":";
        Print(*op.inputs[i], pretty, depth, os);
      }
      os << "]";
      return;
    }
    case OpKind::kTupleConcat:
      os << "(";
      Print(*op.inputs[0], pretty, depth, os);
      os << " ++ ";
      Print(*op.inputs[1], pretty, depth, os);
      os << ")";
      return;
    case OpKind::kCall:
      os << op.name.str();
      plist(op.inputs, "(", ")");
      return;
    case OpKind::kTreeJoin:
      os << "TreeJoin[" << AxisName(op.axis) << "::" << op.ntest.ToString()
         << "]";
      plist(op.inputs, "(", ")");
      return;
    case OpKind::kTreeProject: {
      os << "TreeProject[";
      for (size_t i = 0; i < op.paths.size(); i++) {
        if (i > 0) os << ",";
        os << op.paths[i];
      }
      os << "]";
      plist(op.inputs, "(", ")");
      return;
    }
    case OpKind::kCastable:
    case OpKind::kCast:
    case OpKind::kValidate:
    case OpKind::kTypeMatches:
    case OpKind::kTypeAssert:
      os << OpKindName(op.kind);
      if (!(op.kind == OpKind::kValidate && op.stype.test.kind ==
                ItemTest::Kind::kAnyItem && op.stype.occ == Occurrence::kOne)) {
        os << "[" << op.stype.ToString() << "]";
      }
      plist(op.inputs, "(", ")");
      return;
    case OpKind::kElement:
    case OpKind::kAttribute:
    case OpKind::kPI:
      os << OpKindName(op.kind) << "[" << op.name.str() << "]";
      plist(op.inputs, "(", ")");
      return;
    case OpKind::kGroupBy: {
      os << "GroupBy[" << op.name.str() << ",";
      fieldlist(op.fields);
      os << ",";
      fieldlist(op.fields2);
      os << "]";
      plist(op.deps, "{", "}");
      plist(op.inputs, "(", ")");
      return;
    }
    case OpKind::kOrderBy: {
      os << "OrderBy";
      os << "{";
      for (size_t i = 0; i < op.specs.size(); i++) {
        if (i > 0) os << ",";
        Print(*op.specs[i].key, pretty, depth + 1, os);
        if (op.specs[i].descending) os << " desc";
      }
      os << "}";
      plist(op.inputs, "(", ")");
      return;
    }
    default: {
      os << OpKindName(op.kind);
      // Parameter field (OMap[q], LOuterJoin[q], MapIndex[q], ...).
      if (!op.name.empty()) os << "[" << op.name.str() << "]";
      if (!op.deps.empty()) plist(op.deps, "{", "}");
      plist(op.inputs, "(", ")");
      return;
    }
  }
}

}  // namespace

std::string OpToString(const Op& op, bool pretty) {
  std::ostringstream os;
  Print(op, pretty, 0, os);
  return os.str();
}

bool RebindsIn(OpKind k) {
  switch (k) {
    case OpKind::kSelect:
    case OpKind::kJoin:
    case OpKind::kLOuterJoin:
    case OpKind::kMap:
    case OpKind::kMapConcat:
    case OpKind::kOMapConcat:
    case OpKind::kOrderBy:
    case OpKind::kGroupBy:
    case OpKind::kMapFromItem:
    case OpKind::kMapToItem:
    case OpKind::kMapSome:
    case OpKind::kMapEvery:
      return true;
    default:
      return false;  // Cond branches etc. see the enclosing IN
  }
}

bool FreeIn(const Op& op) {
  if (op.kind == OpKind::kIn) return true;
  for (const OpPtr& i : op.inputs) {
    if (FreeIn(*i)) return true;
  }
  if (!RebindsIn(op.kind)) {
    for (const OpPtr& d : op.deps) {
      if (FreeIn(*d)) return true;
    }
    for (const OrderSpecOp& s : op.specs) {
      if (FreeIn(*s.key)) return true;
    }
  }
  return false;
}

namespace {

void CollectFieldUses(const Op& op, std::set<Symbol>* accessed,
                      std::set<Symbol>* introduced) {
  switch (op.kind) {
    case OpKind::kFieldAccess:
      accessed->insert(op.name);
      break;
    case OpKind::kTupleConstruct:
      for (Symbol f : op.fields) introduced->insert(f);
      break;
    case OpKind::kMapIndex:
    case OpKind::kMapIndexStep:
    case OpKind::kOMap:
    case OpKind::kOMapConcat:
    case OpKind::kLOuterJoin:
      introduced->insert(op.name);
      break;
    case OpKind::kGroupBy:
      introduced->insert(op.name);  // the aggregate field
      break;
    default:
      break;
  }
  for (const OpPtr& d : op.deps) CollectFieldUses(*d, accessed, introduced);
  for (const OpPtr& i : op.inputs) CollectFieldUses(*i, accessed, introduced);
  for (const OrderSpecOp& s : op.specs) {
    CollectFieldUses(*s.key, accessed, introduced);
  }
}

}  // namespace

void CollectOuterFieldUses(const Op& op, std::vector<Symbol>* out) {
  std::set<Symbol> accessed, introduced;
  CollectFieldUses(op, &accessed, &introduced);
  for (Symbol f : accessed) {
    if (introduced.count(f) == 0) out->push_back(f);
  }
}

void CollectFreeInFields(const Op& op, std::vector<Symbol>* out) {
  if (op.kind == OpKind::kFieldAccess && op.inputs[0]->kind == OpKind::kIn) {
    out->push_back(op.name);
    return;
  }
  for (const OpPtr& i : op.inputs) CollectFreeInFields(*i, out);
  if (!RebindsIn(op.kind)) {
    for (const OpPtr& d : op.deps) CollectFreeInFields(*d, out);
    for (const OrderSpecOp& s : op.specs) CollectFreeInFields(*s.key, out);
  }
}

}  // namespace xqc
