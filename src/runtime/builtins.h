// The built-in function library: fn:* (F&O subset), op:* (operator
// backing functions produced by normalization), and fs:* (formal-semantics
// helpers). The paper notes a number of built-ins are required for
// completeness of the algebra (Section 3); Call[q] dispatches here.
#ifndef XQC_RUNTIME_BUILTINS_H_
#define XQC_RUNTIME_BUILTINS_H_

#include <vector>

#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/runtime/context.h"
#include "src/xml/item.h"

namespace xqc {

/// True iff `name` names a built-in function.
bool IsBuiltinFunction(Symbol name);

/// Calls a built-in. Arity is validated; errors carry W3C codes.
Result<Sequence> CallBuiltin(Symbol name, const std::vector<Sequence>& args,
                             DynamicContext* ctx);

/// Lists all built-in function names (for documentation and tests).
std::vector<Symbol> AllBuiltinFunctions();

/// fn:round semantics — half toward positive infinity, floor(x + 0.5) — with
/// NaN and ±INF passing through (F&O 6.4.4). fn:substring / fn:subsequence
/// position arguments round with this, NOT half-away-from-zero std::round;
/// they differ at -N.5. Also used by the streaming subsequence prefix bound.
double XQueryRound(double d);

}  // namespace xqc

#endif  // XQC_RUNTIME_BUILTINS_H_
