// The built-in function library: fn:* (F&O subset), op:* (operator
// backing functions produced by normalization), and fs:* (formal-semantics
// helpers). The paper notes a number of built-ins are required for
// completeness of the algebra (Section 3); Call[q] dispatches here.
#ifndef XQC_RUNTIME_BUILTINS_H_
#define XQC_RUNTIME_BUILTINS_H_

#include <vector>

#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/runtime/context.h"
#include "src/xml/item.h"

namespace xqc {

/// True iff `name` names a built-in function.
bool IsBuiltinFunction(Symbol name);

/// Calls a built-in. Arity is validated; errors carry W3C codes.
Result<Sequence> CallBuiltin(Symbol name, const std::vector<Sequence>& args,
                             DynamicContext* ctx);

/// Lists all built-in function names (for documentation and tests).
std::vector<Symbol> AllBuiltinFunctions();

}  // namespace xqc

#endif  // XQC_RUNTIME_BUILTINS_H_
