#include "src/runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

namespace xqc {

// ---- TaskPool ---------------------------------------------------------------

TaskPool* TaskPool::Global() {
  // Created on first use, deliberately never destroyed: helpers may belong
  // to any thread's query at process exit, and joining them from a static
  // destructor would race other static teardown.
  static TaskPool* pool = []() {
    unsigned hw = std::thread::hardware_concurrency();
    int n = hw > 2 ? static_cast<int>(hw - 1) : 2;
    return new TaskPool(n);
  }();
  return pool;
}

TaskPool::TaskPool(int threads) {
  if (threads < 1) threads = 1;
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; i++) {
    threads_.emplace_back([this] { Loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool TaskPool::TrySubmit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Accept only when an idle helper is not already spoken for by a
    // queued task — so a task never sits waiting behind busy helpers,
    // and the pool cannot become a dependency cycle.
    if (stop_ || idle_ <= static_cast<int>(queue_.size())) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void TaskPool::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_++;
  while (true) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (!queue_.empty()) {
      std::function<void()> fn = std::move(queue_.front());
      queue_.pop_front();
      idle_--;
      lk.unlock();
      fn();
      lk.lock();
      idle_++;
    } else if (stop_) {
      idle_--;
      return;
    }
  }
}

// ---- partitioned execution --------------------------------------------------

namespace {

/// Field-wise accumulation of a partition's evaluator stats into the
/// query-level total (guard_* and peak_memory are published from the parent
/// guard by the engine, after recombination re-charges it).
void MergeExecStats(ExecStats* a, const ExecStats& b) {
  a->hash_joins += b.hash_joins;
  a->sort_joins += b.sort_joins;
  a->range_joins += b.range_joins;
  a->nested_loop_joins += b.nested_loop_joins;
  a->group_bys += b.group_bys;
  a->join_index_reuses += b.join_index_reuses;
  a->specialized_joins += b.specialized_joins;
  a->source_tuples += b.source_tuples;
  a->streaming_early_stops += b.streaming_early_stops;
  a->tree_join.Add(b.tree_join);
  a->doc_store.Add(b.doc_store);
  a->parallel_partitions += b.parallel_partitions;
  a->parallel_range_splits += b.parallel_range_splits;
  a->parallel_steals += b.parallel_steals;
  a->parallel_merges += b.parallel_merges;
  a->parallel_fallbacks += b.parallel_fallbacks;
}

/// One partition of the plan: a contiguous ordinal range of member
/// documents, optionally narrowed to a pre-order interval range.
struct Unit {
  Sequence docs;
  const Op* range_split = nullptr;
  uint64_t lo = 0;
  uint64_t hi = 0;
  Result<Sequence> result{Sequence{}};
  ExecStats stats;
  int64_t guard_steps = 0;
  int64_t guard_mem = 0;
  bool stolen = false;  // ran on a pool helper, not the driver
};

/// State shared between the driver and pool helpers. Owned by shared_ptr:
/// a helper that wakes up after the last unit was claimed may still touch
/// `next`/`units` after the driver has moved on.
struct Shared {
  const CompiledQuery* query = nullptr;
  const DynamicContext* parent_ctx = nullptr;
  ExecOptions options;
  std::unordered_map<Symbol, Sequence> globals;
  GuardLimits unit_limits;
  CancellationToken abort;
  std::vector<Unit> units;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
};

void RunUnit(const std::shared_ptr<Shared>& sh, size_t i, bool on_helper) {
  Unit& u = sh->units[i];
  u.stolen = on_helper;
  // The unit's guard slice: the parent's remaining budgets plus the shared
  // abort token. Private counters; re-charged to the parent on recombine.
  QueryGuard guard(sh->unit_limits, sh->abort);
  DynamicContext wctx;
  wctx.SeedFrom(*sh->parent_ctx);
  wctx.set_guard(&guard);
  PlanEvaluator ev(sh->query, &wctx, sh->options);
  ev.SeedGlobals(sh->globals);
  PartitionSlice slice;
  slice.source = sh->query->parallel.source;
  slice.docs = u.docs;
  slice.range_split = u.range_split;
  slice.range_lo = u.lo;
  slice.range_hi = u.hi;
  ev.set_partition_slice(&slice);
  u.result = ev.EvalItems(*sh->query->plan, EvalCtx{});
  u.stats = ev.stats();
  u.stats.doc_store.Add(wctx.doc_store_stats());
  u.guard_steps = guard.steps();
  u.guard_mem = guard.peak_memory_bytes();
  if (!u.result.ok() && u.result.status().code() != kGuardCancelledCode) {
    // First real error wins: cancel the sibling partitions. Cancellation
    // echoes (XQC0002 from this very token) must not re-cancel — they are
    // a consequence, not a cause.
    sh->abort.RequestCancel();
  }
  {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->done++;
  }
  sh->cv.notify_all();
}

/// Claims and runs units until the queue is empty (used by both the driver
/// and the helpers; the atomic counter is the only scheduler).
void DrainUnits(const std::shared_ptr<Shared>& sh, bool on_helper) {
  while (true) {
    size_t i = sh->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= sh->units.size()) return;
    RunUnit(sh, i, on_helper);
  }
}

}  // namespace

bool TryExecuteParallel(const CompiledQuery& query, DynamicContext* ctx,
                        const ExecOptions& options, int parallelism,
                        ExecStats* stats, Result<Sequence>* result) {
  const ParallelPlanInfo& info = query.parallel;
  if (!info.eligible || info.source == nullptr || parallelism < 2) {
    return false;
  }
  QueryGuard* parent = ctx->guard();
  if (parent == nullptr) parent = UnlimitedGuard();

  // The driver evaluator owns everything with serial error semantics:
  // prolog globals and the collection scan itself run here, exactly as the
  // serial plan would run them first.
  PlanEvaluator driver(&query, ctx, options);
  auto finish = [&](Result<Sequence> r, ExecStats s) {
    *stats = std::move(s);
    *result = std::move(r);
    return true;
  };
  Status globals_status = driver.PrepareGlobals();
  if (!globals_status.ok()) return finish(globals_status, driver.stats());
  Result<Sequence> src = driver.EvalItems(*info.source, EvalCtx{});
  if (!src.ok()) return finish(src.status(), driver.stats());

  // Late (dynamic) fallback: finish serially on the driver evaluator —
  // globals are prepared and the collection scan is cached in the
  // execution context, so nothing is double-charged beyond the cached
  // re-read of the scan op.
  auto serial = [&]() {
    Result<Sequence> r = driver.EvalItems(*query.plan, EvalCtx{});
    ExecStats s = driver.stats();
    s.parallel_fallbacks = 1;
    return finish(std::move(r), std::move(s));
  };

  const Sequence& docs = src.value();
  for (const Item& it : docs) {
    if (!it.IsNode()) return serial();
  }
  if (docs.empty()) return serial();

  // ---- partition ----
  std::vector<Unit> units;
  size_t ndocs = docs.size();
  size_t want = static_cast<size_t>(parallelism);
  if (info.range_split != nullptr && ndocs < want) {
    // Fewer documents than threads and the plan supports intra-document
    // splitting: cut each document's pre-order interval span into even
    // ranges (~2 units per thread for balance under work stealing).
    size_t per_doc = (2 * want + ndocs - 1) / ndocs;
    for (const Item& it : docs) {
      uint64_t lo = it.node()->start;
      uint64_t end = it.node()->end;
      uint64_t span = end - lo + 1;
      size_t r = static_cast<size_t>(
          std::min<uint64_t>(static_cast<uint64_t>(per_doc), span));
      for (size_t i = 0; i < r; i++) {
        Unit u;
        u.docs = Sequence{it};
        u.range_split = info.range_split;
        u.lo = lo + span * i / r;
        u.hi = (i + 1 == r) ? end + 1 : lo + span * (i + 1) / r;
        units.push_back(std::move(u));
      }
    }
  } else {
    // Doc-granular: contiguous ordinal ranges, a few units per thread so
    // uneven documents still balance.
    size_t nunits = std::min(ndocs, want * 4);
    for (size_t i = 0; i < nunits; i++) {
      size_t b = ndocs * i / nunits;
      size_t e = ndocs * (i + 1) / nunits;
      Unit u;
      u.docs.assign(docs.begin() + static_cast<ptrdiff_t>(b),
                    docs.begin() + static_cast<ptrdiff_t>(e));
      units.push_back(std::move(u));
    }
  }
  if (units.size() < 2) return serial();

  // ---- fan out ----
  auto sh = std::make_shared<Shared>();
  sh->query = &query;
  sh->parent_ctx = ctx;
  sh->options = options;
  sh->globals = driver.globals();
  // Linked to the caller's token: a caller-side RequestCancel reaches the
  // worker guards directly (even while every thread, driver included, is
  // busy inside a partition), while a partition error cancels only the
  // sibling partitions via sh->abort's own flag.
  sh->abort = CancellationToken::MakeLinked(parent->cancel_token());
  sh->units = std::move(units);
  const GuardLimits& pl = parent->limits();
  if (pl.deadline_ms > 0) {
    sh->unit_limits.deadline_ms =
        std::max<int64_t>(1, parent->remaining_deadline_ms());
  }
  if (pl.max_memory_bytes > 0) {
    sh->unit_limits.max_memory_bytes = std::max<int64_t>(
        1, pl.max_memory_bytes - parent->peak_memory_bytes());
  }
  if (pl.max_eval_steps > 0) {
    sh->unit_limits.max_eval_steps =
        std::max<int64_t>(1, pl.max_eval_steps - parent->steps());
  }

  size_t helpers = std::min(sh->units.size() - 1, want - 1);
  for (size_t i = 0; i < helpers; i++) {
    // Best-effort: a busy pool just means the driver does more units
    // itself. Never blocks, never deadlocks.
    if (!TaskPool::Global()->TrySubmit([sh] { DrainUnits(sh, true); })) break;
  }
  DrainUnits(sh, /*on_helper=*/false);
  {
    // Wait for helper-held units, propagating parent-guard trips
    // (cancellation, deadline) to the workers within ~1ms.
    std::unique_lock<std::mutex> lk(sh->mu);
    while (sh->done < sh->units.size()) {
      sh->cv.wait_for(lk, std::chrono::milliseconds(1));
      if (!parent->CheckNow().ok()) sh->abort.RequestCancel();
    }
  }

  // ---- recombine ----
  ExecStats total = driver.stats();
  Status final_status = parent->CheckNow();
  for (Unit& u : sh->units) {
    MergeExecStats(&total, u.stats);
    if (final_status.ok()) {
      // Re-charge the partition's guard usage to the parent, in unit
      // order: the parent's cumulative step/memory totals — and its
      // XQC0003/XQC0006 trip points — track the serial run's.
      Status s = parent->CheckSteps(u.guard_steps);
      if (s.ok() && u.guard_mem > 0) s = parent->AccountMemory(u.guard_mem);
      if (!s.ok()) final_status = s;
    }
  }
  total.parallel_partitions = static_cast<int64_t>(sh->units.size());
  for (const Unit& u : sh->units) {
    if (u.range_split != nullptr) total.parallel_range_splits++;
    if (u.stolen) total.parallel_steals++;
  }
  total.parallel_merges = 1;

  if (final_status.ok()) {
    // First error wins, by collection ordinal — the serial run would have
    // failed on the earliest erroring partition. Cancellation echoes from
    // the shared abort token lose to the real error that caused them.
    const Status* first_any = nullptr;
    for (const Unit& u : sh->units) {
      if (u.result.ok()) continue;
      if (first_any == nullptr) first_any = &u.result.status();
      if (u.result.status().code() != kGuardCancelledCode) {
        final_status = u.result.status();
        break;
      }
    }
    if (final_status.ok() && first_any != nullptr) final_status = *first_any;
  }
  if (!final_status.ok()) return finish(final_status, std::move(total));

  // Ordinal merge: unit key ranges are disjoint and increasing, and every
  // unit's output is internally in document order, so the k-way merge on
  // (collection ordinal, pre) degenerates to ordered concatenation.
  Sequence out;
  size_t n = 0;
  for (const Unit& u : sh->units) n += u.result.value().size();
  out.reserve(n);
  for (Unit& u : sh->units) {
    Sequence& part = u.result.value();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return finish(std::move(out), std::move(total));
}

}  // namespace xqc
