// Tuples and tables of the physical data model (Section 3): a tuple is a
// record whose fields hold whole item sequences — NOT nested tuples — which
// is what keeps the paper's GroupBy rewriting local.
#ifndef XQC_RUNTIME_TUPLE_H_
#define XQC_RUNTIME_TUPLE_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/base/symbol.h"
#include "src/xml/item.h"

namespace xqc {

/// A tuple [q1:S(i1); ...; qn:S(in)]. Field count is small (bounded by the
/// number of in-scope variables), so storage is a flat vector with linear
/// lookup on interned symbols (integer compares). Field values are shared
/// immutably: copying tuples — the bread and butter of MapConcat / Product /
/// Join — copies pointers, not item sequences.
class Tuple {
 public:
  Tuple() = default;

  /// Sets (or overwrites) a field.
  void Set(Symbol field, Sequence value) {
    auto shared = std::make_shared<const Sequence>(std::move(value));
    for (auto& [f, v] : entries_) {
      if (f == field) {
        v = std::move(shared);
        return;
      }
    }
    entries_.emplace_back(field, std::move(shared));
  }

  /// Returns the field's value or nullptr.
  const Sequence* Get(Symbol field) const {
    for (const auto& [f, v] : entries_) {
      if (f == field) return v.get();
    }
    return nullptr;
  }

  bool Has(Symbol field) const { return Get(field) != nullptr; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<Symbol, std::shared_ptr<const Sequence>>>&
  entries() const {
    return entries_;
  }

  /// Tuple concatenation t1 ++ t2. Duplicate fields keep t1's value: after
  /// the (map through group-by) rewriting, dependent streams legitimately
  /// carry the input tuple's fields again with identical values.
  static Tuple Concat(const Tuple& a, const Tuple& b) {
    Tuple out = a;
    out.entries_.reserve(a.entries_.size() + b.entries_.size());
    for (const auto& [f, v] : b.entries_) {
      if (!out.Has(f)) out.entries_.emplace_back(f, v);
    }
    return out;
  }

 private:
  std::vector<std::pair<Symbol, std::shared_ptr<const Sequence>>> entries_;
};

/// A table: an ordered sequence of tuples.
using Table = std::vector<Tuple>;

}  // namespace xqc

#endif  // XQC_RUNTIME_TUPLE_H_
