// Pull-based (open/next/close) execution of the tuple algebra.
//
// The materializing evaluator (eval.h) computes every operator's full
// table before its consumer runs; a TupleIterator instead yields one
// tuple per Next() call, so a consumer that needs only a prefix of the
// result — fn:exists, fn:empty, a positional [1] head, fn:subsequence,
// a quantified expression — stops pulling and the untouched suffix of
// the input is never evaluated. Iterators are produced by
// PlanEvaluator::OpenTable (iterator.cc); GroupBy and OrderBy are
// pipeline breakers that materialize behind a TableIter.
#ifndef XQC_RUNTIME_ITERATOR_H_
#define XQC_RUNTIME_ITERATOR_H_

#include <memory>

#include "src/base/status.h"
#include "src/runtime/tuple.h"

namespace xqc {

class TupleIterator {
 public:
  virtual ~TupleIterator() = default;

  /// Acquires resources (child iterators, the build side of a join).
  /// Called exactly once, before the first Next().
  virtual Status Open() = 0;

  /// Produces the next tuple into `*out`. Returns false at end of
  /// stream; after returning false, behavior of further calls is
  /// undefined. `*out` is overwritten only on a true return.
  virtual Result<bool> Next(Tuple* out) = 0;

  /// Releases resources early (optional; the destructor also releases).
  virtual void Close() {}
};

using TupleIteratorPtr = std::unique_ptr<TupleIterator>;

}  // namespace xqc

#endif  // XQC_RUNTIME_ITERATOR_H_
