// Pull-based (open/next/close) execution of the tuple algebra.
//
// The materializing evaluator (eval.h) computes every operator's full
// table before its consumer runs; a TupleIterator instead yields one
// tuple per Next() call, so a consumer that needs only a prefix of the
// result — fn:exists, fn:empty, a positional [1] head, fn:subsequence,
// a quantified expression — stops pulling and the untouched suffix of
// the input is never evaluated. Iterators are produced by
// PlanEvaluator::OpenTable (iterator.cc); GroupBy and OrderBy are
// pipeline breakers that materialize behind a TableIter.
//
// Batched execution: NextBatch() moves up to `max` tuples per virtual
// call through a TupleBatch, amortizing dispatch and guard traffic
// across the batch (see DESIGN.md "Batched execution"). A given
// iterator instance is driven through exactly one of the two
// interfaces: consumers use Next() when ExecOptions::batch_size == 1
// (the tuple-at-a-time oracle) and NextBatch() otherwise. Batched
// operators credit guard steps with QueryGuard::CheckSteps so the
// oracle's step/check/trip accounting is reproduced exactly.
#ifndef XQC_RUNTIME_ITERATOR_H_
#define XQC_RUNTIME_ITERATOR_H_

#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/tuple.h"

namespace xqc {

/// A reusable buffer of tuples moved between iterators by NextBatch().
/// clear() only resets the logical size: slots (and the vectors inside
/// their tuples) are recycled across refills, so a steady-state pipeline
/// allocates no per-batch memory.
class TupleBatch {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Tuple& operator[](size_t i) { return slots_[i]; }
  const Tuple& operator[](size_t i) const { return slots_[i]; }
  void clear() { size_ = 0; }

  /// Appends by move, reusing a cleared slot when one exists.
  void push(Tuple&& t) {
    if (size_ < slots_.size()) {
      slots_[size_] = std::move(t);
    } else {
      slots_.push_back(std::move(t));
    }
    size_++;
  }

  /// Takes a whole table as the batch contents in O(1), bypassing the
  /// per-tuple moves of push(). Only valid on an empty batch (the
  /// common producer fast path: a probe/chunk result that fits the
  /// demand bound becomes the batch wholesale). `rows` is left empty
  /// but with its capacity intact for the producer to refill.
  void adopt(std::vector<Tuple>* rows) {
    slots_.swap(*rows);
    size_ = slots_.size();
    rows->clear();
  }

 private:
  std::vector<Tuple> slots_;
  size_t size_ = 0;
};

class TupleIterator {
 public:
  virtual ~TupleIterator() = default;

  /// Acquires resources (child iterators, the build side of a join).
  /// Called exactly once, before the first Next().
  virtual Status Open() = 0;

  /// Produces the next tuple into `*out`. Returns false at end of
  /// stream; after returning false, behavior of further calls is
  /// undefined. `*out` is overwritten only on a true return.
  virtual Result<bool> Next(Tuple* out) = 0;

  /// Fills `out` (cleared first) with up to `max` tuples. An empty
  /// batch means end of stream and is stable (further calls stay
  /// empty); a short non-empty batch does NOT — operator boundaries and
  /// early-exit clamps cut batches short. `max` is the consumer's
  /// demand bound: an implementation never pulls more than `max`
  /// tuples of lookahead from a 1:1 child, which is what keeps
  /// positional early exits ([1], [position() <= N]) from evaluating
  /// input the oracle would not. The default implementation loops
  /// Next(); hot operators override it.
  virtual Status NextBatch(TupleBatch* out, size_t max);

  /// Releases resources early (optional; the destructor also releases).
  virtual void Close() {}

 private:
  bool default_batch_eos_ = false;  // latch for the default NextBatch
};

using TupleIteratorPtr = std::unique_ptr<TupleIterator>;

}  // namespace xqc

#endif  // XQC_RUNTIME_ITERATOR_H_
