#include "src/runtime/builtins.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <unordered_set>

#include "src/base/strutil.h"
#include "src/types/compare.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"

namespace xqc {

double XQueryRound(double d) {
  if (std::isnan(d) || std::isinf(d)) return d;
  return std::floor(d + 0.5);
}

namespace {

using Args = std::vector<Sequence>;
using Fn = std::function<Result<Sequence>(const Args&, DynamicContext*)>;

struct Builtin {
  int min_arity;
  int max_arity;  // -1 = unbounded
  Fn fn;
};

// ---- helpers ---------------------------------------------------------------

Status ArityError(const std::string& name, size_t got) {
  return Status::XQueryError("XPST0017", "wrong number of arguments (" +
                                             std::to_string(got) + ") for " +
                                             name);
}

Result<Sequence> One(Item it) { return Sequence{std::move(it)}; }
Sequence None() { return Sequence{}; }

Result<Sequence> BoolSeq(bool b) { return One(AtomicValue::Boolean(b)); }

/// Atomizes and requires at most one item; empty yields empty.
Result<Sequence> AtomizeOpt(const Sequence& s, const char* what) {
  XQC_ASSIGN_OR_RETURN(Sequence a, Atomize(s));
  if (a.size() > 1) {
    return Status::XQueryError(
        "XPTY0004", std::string("more than one item passed to ") + what);
  }
  return a;
}

/// Numeric operand for arithmetic: untyped casts to double.
Result<AtomicValue> NumericOperand(const AtomicValue& v, const char* what) {
  if (v.is_numeric()) return v;
  if (v.type() == AtomicType::kUntypedAtomic) {
    return CastTo(v, AtomicType::kDouble);
  }
  return Status::XQueryError(
      "XPTY0004", std::string(AtomicTypeName(v.type())) + " operand for " + what);
}

/// String value of an optional-singleton argument ("" when empty).
Result<std::string> StringArg(const Sequence& s, const char* what) {
  XQC_ASSIGN_OR_RETURN(Sequence a, AtomizeOpt(s, what));
  if (a.empty()) return std::string();
  return a[0].atomic().Lexical();
}

Result<double> DoubleArg(const Sequence& s, const char* what) {
  XQC_ASSIGN_OR_RETURN(Sequence a, AtomizeOpt(s, what));
  if (a.empty()) {
    return Status::XQueryError("XPTY0004",
                               std::string("empty sequence passed to ") + what);
  }
  XQC_ASSIGN_OR_RETURN(AtomicValue n, NumericOperand(a[0].atomic(), what));
  return n.AsDouble();
}

bool BothInt(const AtomicValue& a, const AtomicValue& b) {
  return a.type() == AtomicType::kInteger && b.type() == AtomicType::kInteger;
}

// ---- arithmetic ------------------------------------------------------------

enum class NumOp { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

Result<Sequence> Arith(NumOp op, const Args& args) {
  XQC_ASSIGN_OR_RETURN(Sequence a, AtomizeOpt(args[0], "arithmetic"));
  XQC_ASSIGN_OR_RETURN(Sequence b, AtomizeOpt(args[1], "arithmetic"));
  if (a.empty() || b.empty()) return None();
  XQC_ASSIGN_OR_RETURN(AtomicValue x, NumericOperand(a[0].atomic(), "arithmetic"));
  XQC_ASSIGN_OR_RETURN(AtomicValue y, NumericOperand(b[0].atomic(), "arithmetic"));
  if (BothInt(x, y)) {
    int64_t i = x.AsInt(), j = y.AsInt();
    switch (op) {
      case NumOp::kAdd: return One(AtomicValue::Integer(i + j));
      case NumOp::kSub: return One(AtomicValue::Integer(i - j));
      case NumOp::kMul: return One(AtomicValue::Integer(i * j));
      case NumOp::kDiv:
        if (j == 0) {
          return Status::XQueryError("FOAR0001", "integer division by zero");
        }
        // xs:integer div xs:integer -> xs:decimal.
        return One(AtomicValue::Decimal(static_cast<double>(i) /
                                        static_cast<double>(j)));
      case NumOp::kIDiv:
        if (j == 0) {
          return Status::XQueryError("FOAR0001", "integer division by zero");
        }
        return One(AtomicValue::Integer(i / j));
      case NumOp::kMod:
        if (j == 0) {
          return Status::XQueryError("FOAR0001", "integer modulus by zero");
        }
        return One(AtomicValue::Integer(i % j));
    }
  }
  double u = x.AsDouble(), v = y.AsDouble();
  // Result type: double if either is double/untyped-cast, else promote to
  // the wider of the two (we simplify decimal/float to their double carrier
  // but keep the tag).
  AtomicType rt =
      (x.type() == AtomicType::kDouble || y.type() == AtomicType::kDouble)
          ? AtomicType::kDouble
      : (x.type() == AtomicType::kFloat || y.type() == AtomicType::kFloat)
          ? AtomicType::kFloat
          : AtomicType::kDecimal;
  auto mk = [&](double d) -> Result<Sequence> {
    if (rt == AtomicType::kDouble) return One(AtomicValue::Double(d));
    if (rt == AtomicType::kFloat) return One(AtomicValue::Float(d));
    if (std::isnan(d) || std::isinf(d)) {
      return Status::XQueryError("FOAR0001", "decimal division by zero");
    }
    return One(AtomicValue::Decimal(d));
  };
  switch (op) {
    case NumOp::kAdd: return mk(u + v);
    case NumOp::kSub: return mk(u - v);
    case NumOp::kMul: return mk(u * v);
    case NumOp::kDiv: return mk(u / v);
    case NumOp::kIDiv: {
      if (v == 0.0) {
        return Status::XQueryError("FOAR0001", "integer division by zero");
      }
      double q = std::trunc(u / v);
      return One(AtomicValue::Integer(static_cast<int64_t>(q)));
    }
    case NumOp::kMod: {
      double r = std::fmod(u, v);
      return mk(r);
    }
  }
  return Status::Internal("unreachable arithmetic case");
}

// ---- comparisons -----------------------------------------------------------

Result<Sequence> ValueComp(CompOp op, const Args& args) {
  XQC_ASSIGN_OR_RETURN(Sequence a, AtomizeOpt(args[0], "value comparison"));
  XQC_ASSIGN_OR_RETURN(Sequence b, AtomizeOpt(args[1], "value comparison"));
  if (a.empty() || b.empty()) return None();
  XQC_ASSIGN_OR_RETURN(bool r,
                       ValueCompareAtomic(op, a[0].atomic(), b[0].atomic()));
  return BoolSeq(r);
}

Result<Sequence> GeneralComp(CompOp op, const Args& args) {
  XQC_ASSIGN_OR_RETURN(bool r, GeneralCompare(op, args[0], args[1]));
  return BoolSeq(r);
}

// ---- aggregates ------------------------------------------------------------

Result<Sequence> AggregateSum(const Sequence& in, bool for_avg) {
  XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(in));
  if (atoms.empty()) {
    if (for_avg) return None();
    return One(AtomicValue::Integer(0));
  }
  bool all_int = true;
  AtomicType widest = AtomicType::kInteger;
  double sum = 0;
  int64_t isum = 0;
  for (const Item& it : atoms) {
    XQC_ASSIGN_OR_RETURN(AtomicValue v, NumericOperand(it.atomic(), "fn:sum"));
    if (v.type() != AtomicType::kInteger) all_int = false;
    if (static_cast<int>(v.type()) > static_cast<int>(widest)) {
      widest = v.type();
    }
    sum += v.AsDouble();
    if (v.type() == AtomicType::kInteger) isum += v.AsInt();
  }
  if (for_avg) {
    double avg = sum / static_cast<double>(atoms.size());
    if (all_int || widest == AtomicType::kDecimal) {
      return One(AtomicValue::Decimal(avg));
    }
    if (widest == AtomicType::kFloat) return One(AtomicValue::Float(avg));
    return One(AtomicValue::Double(avg));
  }
  if (all_int) return One(AtomicValue::Integer(isum));
  if (widest == AtomicType::kDecimal) return One(AtomicValue::Decimal(sum));
  if (widest == AtomicType::kFloat) return One(AtomicValue::Float(sum));
  return One(AtomicValue::Double(sum));
}

Result<Sequence> AggregateMinMax(const Sequence& in, bool want_min) {
  XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(in));
  if (atoms.empty()) return None();
  AtomicValue best;
  bool first = true;
  for (const Item& it : atoms) {
    AtomicValue v = it.atomic();
    if (v.type() == AtomicType::kUntypedAtomic) {
      XQC_ASSIGN_OR_RETURN(v, CastTo(v, AtomicType::kDouble));
    }
    if (first) {
      best = v;
      first = false;
      continue;
    }
    XQC_ASSIGN_OR_RETURN(
        bool better,
        ValueCompareAtomic(want_min ? CompOp::kLt : CompOp::kGt, v, best));
    if (better) best = v;
  }
  return One(best);
}

// ---- node set operations ---------------------------------------------------

Result<std::vector<NodePtr>> NodeSet(const Sequence& s, const char* what) {
  std::vector<NodePtr> out;
  out.reserve(s.size());
  for (const Item& it : s) {
    if (!it.IsNode()) {
      return Status::XQueryError(
          "XPTY0004", std::string("atomic value in operand of ") + what);
    }
    out.push_back(it.node());
  }
  std::sort(out.begin(), out.end(), [](const NodePtr& a, const NodePtr& b) {
    return DocOrderLess(a.get(), b.get());
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<Sequence> NodeSetOp(const Args& args, const char* what, char mode) {
  XQC_ASSIGN_OR_RETURN(std::vector<NodePtr> a, NodeSet(args[0], what));
  XQC_ASSIGN_OR_RETURN(std::vector<NodePtr> b, NodeSet(args[1], what));
  std::unordered_set<const Node*> bset;
  for (const NodePtr& n : b) bset.insert(n.get());
  Sequence out;
  if (mode == 'u') {
    std::vector<NodePtr> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    std::sort(merged.begin(), merged.end(),
              [](const NodePtr& x, const NodePtr& y) {
                return DocOrderLess(x.get(), y.get());
              });
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    for (NodePtr& n : merged) out.push_back(std::move(n));
    return out;
  }
  for (NodePtr& n : a) {
    bool in_b = bset.count(n.get()) > 0;
    if ((mode == 'i' && in_b) || (mode == 'e' && !in_b)) {
      out.push_back(std::move(n));
    }
  }
  return out;
}

// ---- string helpers ----------------------------------------------------------

/// The only collation this engine implements (F&O 7.3.1): the Unicode
/// codepoint collation.
constexpr const char* kCodepointCollation =
    "http://www.w3.org/2005/xpath-functions/collation/codepoint";

/// Validates an optional trailing collation argument: the codepoint
/// collation is accepted, anything else is FOCH0002 (F&O 7.4).
Status CheckCollationArg(const Args& args, size_t idx, const char* what) {
  if (args.size() <= idx) return Status::OK();
  Result<std::string> c = StringArg(args[idx], what);
  if (!c.ok()) return c.status();
  if (c.value() != kCodepointCollation) {
    return Status::XQueryError(
        "FOCH0002", std::string(what) + ": unsupported collation \"" +
                        c.value() + "\"");
  }
  return Status::OK();
}

Result<Sequence> Substring(const Args& args) {
  XQC_ASSIGN_OR_RETURN(std::string s, StringArg(args[0], "fn:substring"));
  XQC_ASSIGN_OR_RETURN(double dstart, DoubleArg(args[1], "fn:substring"));
  double dlen = args.size() == 3 ? 0 : HUGE_VAL;
  if (args.size() == 3) {
    XQC_ASSIGN_OR_RETURN(dlen, DoubleArg(args[2], "fn:substring"));
    if (std::isnan(dlen)) return One(AtomicValue::String(""));
  }
  // F&O 7.4.3: positions are codepoints counted from 1 and round with
  // fn:round; a NaN start or length selects nothing.
  if (std::isnan(dstart)) return One(AtomicValue::String(""));
  double from = XQueryRound(dstart);
  // from + len can be NaN (-INF start with INF length): pos < NaN is false
  // for every position, which is exactly the spec's empty result.
  double to = args.size() == 3 ? from + XQueryRound(dlen) : HUGE_VAL;
  std::string out;
  double pos = 1.0;
  for (size_t i = 0; i < s.size(); pos += 1.0) {
    size_t next = Utf8Next(s, i);
    if (pos >= from && pos < to) out.append(s, i, next - i);
    i = next;
  }
  return One(AtomicValue::String(std::move(out)));
}

// ---- registry --------------------------------------------------------------

const std::map<std::string, Builtin>& Registry() {
  static const std::map<std::string, Builtin>* kReg = [] {
    auto* m = new std::map<std::string, Builtin>();
    auto add = [&](const char* name, int lo, int hi, Fn fn) {
      (*m)[name] = Builtin{lo, hi, std::move(fn)};
    };

    // -- boolean --
    add("fn:boolean", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(a[0]));
      return BoolSeq(b);
    });
    add("fn:not", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(a[0]));
      return BoolSeq(!b);
    });
    add("fn:true", 0, 0,
        [](const Args&, DynamicContext*) { return BoolSeq(true); });
    add("fn:false", 0, 0,
        [](const Args&, DynamicContext*) { return BoolSeq(false); });

    // -- cardinality --
    add("fn:empty", 1, 1, [](const Args& a, DynamicContext*) {
      return BoolSeq(a[0].empty());
    });
    add("fn:exists", 1, 1, [](const Args& a, DynamicContext*) {
      return BoolSeq(!a[0].empty());
    });
    add("fn:count", 1, 1, [](const Args& a, DynamicContext*) {
      return One(AtomicValue::Integer(static_cast<int64_t>(a[0].size())));
    });
    add("fn:zero-or-one", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          if (a[0].size() > 1) {
            return Status::XQueryError("FORG0003",
                                       "fn:zero-or-one on longer sequence");
          }
          return a[0];
        });
    add("fn:one-or-more", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          if (a[0].empty()) {
            return Status::XQueryError("FORG0004",
                                       "fn:one-or-more on empty sequence");
          }
          return a[0];
        });
    add("fn:exactly-one", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          if (a[0].size() != 1) {
            return Status::XQueryError("FORG0005",
                                       "fn:exactly-one on non-singleton");
          }
          return a[0];
        });

    // -- aggregates --
    add("fn:sum", 1, 1, [](const Args& a, DynamicContext*) {
      return AggregateSum(a[0], /*for_avg=*/false);
    });
    add("fn:avg", 1, 1, [](const Args& a, DynamicContext*) {
      return AggregateSum(a[0], /*for_avg=*/true);
    });
    add("fn:min", 1, 1, [](const Args& a, DynamicContext*) {
      return AggregateMinMax(a[0], /*want_min=*/true);
    });
    add("fn:max", 1, 1, [](const Args& a, DynamicContext*) {
      return AggregateMinMax(a[0], /*want_min=*/false);
    });

    // -- atomization / strings --
    add("fn:data", 1, 1, [](const Args& a, DynamicContext*) {
      return Atomize(a[0]);
    });
    add("fn:string", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      if (a[0].empty()) return One(AtomicValue::String(""));
      if (a[0].size() > 1) {
        return Status::XQueryError("XPTY0004", "fn:string on multi-item sequence");
      }
      return One(AtomicValue::String(a[0][0].StringValue()));
    });
    add("fn:string-length", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:string-length"));
          // Codepoints, not UTF-8 bytes: string-length("déjà vu") is 7.
          return One(AtomicValue::Integer(static_cast<int64_t>(Utf8Length(s))));
        });
    add("fn:concat", 2, -1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          std::string out;
          for (const Sequence& s : a) {
            XQC_ASSIGN_OR_RETURN(std::string part, StringArg(s, "fn:concat"));
            out += part;
          }
          return One(AtomicValue::String(std::move(out)));
        });
    add("fn:contains", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:contains"));
          XQC_ASSIGN_OR_RETURN(std::string t, StringArg(a[1], "fn:contains"));
          return BoolSeq(s.find(t) != std::string::npos);
        });
    add("fn:starts-with", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:starts-with"));
          XQC_ASSIGN_OR_RETURN(std::string t, StringArg(a[1], "fn:starts-with"));
          return BoolSeq(s.rfind(t, 0) == 0);
        });
    add("fn:ends-with", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:ends-with"));
          XQC_ASSIGN_OR_RETURN(std::string t, StringArg(a[1], "fn:ends-with"));
          return BoolSeq(s.size() >= t.size() &&
                         s.compare(s.size() - t.size(), t.size(), t) == 0);
        });
    add("fn:substring", 2, 3, [](const Args& a, DynamicContext*) {
      return Substring(a);
    });
    // The 3-arity forms take a collation (F&O 7.4.7/7.4.9); only the
    // codepoint collation is supported, others raise FOCH0002. Byte-wise
    // find is correct for the codepoint collation: UTF-8 is
    // self-synchronizing, so a byte match is a codepoint match.
    add("fn:substring-before", 2, 3,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_RETURN_IF_ERROR(CheckCollationArg(a, 2, "substring-before"));
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "substring-before"));
          XQC_ASSIGN_OR_RETURN(std::string t, StringArg(a[1], "substring-before"));
          size_t p = s.find(t);
          if (p == std::string::npos) return One(AtomicValue::String(""));
          return One(AtomicValue::String(s.substr(0, p)));
        });
    add("fn:substring-after", 2, 3,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_RETURN_IF_ERROR(CheckCollationArg(a, 2, "substring-after"));
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "substring-after"));
          XQC_ASSIGN_OR_RETURN(std::string t, StringArg(a[1], "substring-after"));
          size_t p = s.find(t);
          if (p == std::string::npos) return One(AtomicValue::String(""));
          return One(AtomicValue::String(s.substr(p + t.size())));
        });
    add("fn:upper-case", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:upper-case"));
          for (char& c : s) c = static_cast<char>(toupper(c));
          return One(AtomicValue::String(std::move(s)));
        });
    add("fn:lower-case", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:lower-case"));
          for (char& c : s) c = static_cast<char>(tolower(c));
          return One(AtomicValue::String(std::move(s)));
        });
    add("fn:normalize-space", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "normalize-space"));
          return One(AtomicValue::String(NormalizeSpace(s)));
        });
    add("fn:translate", 3, 3,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(std::string s, StringArg(a[0], "fn:translate"));
          XQC_ASSIGN_OR_RETURN(std::string map, StringArg(a[1], "fn:translate"));
          XQC_ASSIGN_OR_RETURN(std::string trans, StringArg(a[2], "fn:translate"));
          std::string out;
          for (char c : s) {
            size_t p = map.find(c);
            if (p == std::string::npos) {
              out.push_back(c);
            } else if (p < trans.size()) {
              out.push_back(trans[p]);
            }
          }
          return One(AtomicValue::String(std::move(out)));
        });
    add("fn:string-join", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(a[0]));
          XQC_ASSIGN_OR_RETURN(std::string sep, StringArg(a[1], "string-join"));
          std::string out;
          for (size_t i = 0; i < atoms.size(); i++) {
            if (i > 0) out += sep;
            out += atoms[i].atomic().Lexical();
          }
          return One(AtomicValue::String(std::move(out)));
        });

    // -- numerics --
    add("fn:number", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence atoms, AtomizeOpt(a[0], "fn:number"));
          if (atoms.empty()) return One(AtomicValue::Double(std::nan("")));
          Result<AtomicValue> r = CastTo(atoms[0].atomic(), AtomicType::kDouble);
          if (!r.ok()) return One(AtomicValue::Double(std::nan("")));
          return One(r.take());
        });
    add("fn:abs", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(Sequence atoms, AtomizeOpt(a[0], "fn:abs"));
      if (atoms.empty()) return None();
      XQC_ASSIGN_OR_RETURN(AtomicValue v, NumericOperand(atoms[0].atomic(), "fn:abs"));
      if (v.type() == AtomicType::kInteger) {
        return One(AtomicValue::Integer(std::llabs(v.AsInt())));
      }
      return One(AtomicValue::Double(std::fabs(v.AsDouble())));
    });
    auto rounder = [](double (*f)(double), const char* nm) {
      return [f, nm](const Args& a, DynamicContext*) -> Result<Sequence> {
        XQC_ASSIGN_OR_RETURN(Sequence atoms, AtomizeOpt(a[0], nm));
        if (atoms.empty()) return None();
        XQC_ASSIGN_OR_RETURN(AtomicValue v, NumericOperand(atoms[0].atomic(), nm));
        if (v.type() == AtomicType::kInteger) return One(v);
        return One(AtomicValue::Double(f(v.AsDouble())));
      };
    };
    add("fn:floor", 1, 1, rounder(+[](double d) { return std::floor(d); }, "fn:floor"));
    add("fn:ceiling", 1, 1, rounder(+[](double d) { return std::ceil(d); }, "fn:ceiling"));
    add("fn:round", 1, 1, rounder(&XQueryRound, "fn:round"));

    // -- sequences --
    add("fn:distinct-values", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(a[0]));
          std::unordered_set<JoinKey, JoinKeyHash> seen;
          bool seen_nan = false;
          Sequence out;
          for (const Item& it : atoms) {
            const AtomicValue& v = it.atomic();
            if (v.is_numeric() && std::isnan(v.AsDouble())) {
              if (!seen_nan) out.push_back(it);
              seen_nan = true;
              continue;
            }
            std::vector<JoinKey> keys = PromoteToSimpleTypes(v);
            bool dup = false;
            for (const JoinKey& k : keys) {
              if (seen.count(k) > 0) dup = true;
            }
            if (!dup) out.push_back(it);
            for (JoinKey& k : keys) seen.insert(std::move(k));
          }
          return out;
        });
    add("fn:reverse", 1, 1, [](const Args& a, DynamicContext*) {
      Sequence out(a[0].rbegin(), a[0].rend());
      return Result<Sequence>(std::move(out));
    });
    add("fn:subsequence", 2, 3,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(double dstart, DoubleArg(a[1], "fn:subsequence"));
          double dlen = HUGE_VAL;
          if (a.size() == 3) {
            XQC_ASSIGN_OR_RETURN(dlen, DoubleArg(a[2], "fn:subsequence"));
          }
          double from = XQueryRound(dstart);
          double to = a.size() == 3 ? from + XQueryRound(dlen) : HUGE_VAL;
          Sequence out;
          for (size_t i = 0; i < a[0].size(); i++) {
            double pos = static_cast<double>(i) + 1.0;
            if (pos >= from && pos < to) out.push_back(a[0][i]);
          }
          return out;
        });
    add("fn:insert-before", 3, 3,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(double dpos, DoubleArg(a[1], "fn:insert-before"));
          int64_t pos = std::max<int64_t>(1, static_cast<int64_t>(dpos));
          Sequence out;
          for (size_t i = 0; i < a[0].size(); i++) {
            if (static_cast<int64_t>(i) + 1 == pos) Extend(&out, a[2]);
            out.push_back(a[0][i]);
          }
          if (pos > static_cast<int64_t>(a[0].size())) Extend(&out, a[2]);
          return out;
        });
    add("fn:remove", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(double dpos, DoubleArg(a[1], "fn:remove"));
          int64_t pos = static_cast<int64_t>(dpos);
          Sequence out;
          for (size_t i = 0; i < a[0].size(); i++) {
            if (static_cast<int64_t>(i) + 1 != pos) out.push_back(a[0][i]);
          }
          return out;
        });
    add("fn:index-of", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(a[0]));
          XQC_ASSIGN_OR_RETURN(Sequence target, AtomizeOpt(a[1], "fn:index-of"));
          Sequence out;
          if (target.empty()) return out;
          for (size_t i = 0; i < atoms.size(); i++) {
            Result<bool> eq = ValueCompareAtomic(CompOp::kEq, atoms[i].atomic(),
                                                 target[0].atomic());
            if (eq.ok() && eq.value()) {
              out.push_back(AtomicValue::Integer(static_cast<int64_t>(i) + 1));
            }
          }
          return out;
        });
    add("fn:deep-equal", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          std::function<bool(const Node&, const Node&)> node_eq =
              [&](const Node& x, const Node& y) {
                if (x.kind != y.kind || x.name != y.name) return false;
                if (x.kind != NodeKind::kElement &&
                    x.kind != NodeKind::kDocument) {
                  return x.value == y.value;
                }
                if (x.attributes.size() != y.attributes.size()) return false;
                for (const NodePtr& xa : x.attributes) {
                  bool found = false;
                  for (const NodePtr& ya : y.attributes) {
                    if (xa->name == ya->name && xa->value == ya->value) {
                      found = true;
                    }
                  }
                  if (!found) return false;
                }
                // Compare element/text children, ignoring comments/PIs.
                std::vector<const Node*> xc, yc;
                for (const NodePtr& c : x.children) {
                  if (c->kind == NodeKind::kElement ||
                      c->kind == NodeKind::kText) {
                    xc.push_back(c.get());
                  }
                }
                for (const NodePtr& c : y.children) {
                  if (c->kind == NodeKind::kElement ||
                      c->kind == NodeKind::kText) {
                    yc.push_back(c.get());
                  }
                }
                if (xc.size() != yc.size()) return false;
                for (size_t i = 0; i < xc.size(); i++) {
                  if (!node_eq(*xc[i], *yc[i])) return false;
                }
                return true;
              };
          const Sequence& x = a[0];
          const Sequence& y = a[1];
          if (x.size() != y.size()) return BoolSeq(false);
          for (size_t i = 0; i < x.size(); i++) {
            if (x[i].IsNode() != y[i].IsNode()) return BoolSeq(false);
            if (x[i].IsNode()) {
              if (!node_eq(*x[i].node(), *y[i].node())) return BoolSeq(false);
            } else {
              Result<bool> eq = ValueCompareAtomic(CompOp::kEq, x[i].atomic(),
                                                   y[i].atomic());
              if (!eq.ok() || !eq.value()) return BoolSeq(false);
            }
          }
          return BoolSeq(true);
        });

    // -- nodes / documents --
    add("fn:doc", 1, 1, [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(std::string uri, StringArg(a[0], "fn:doc"));
      XQC_ASSIGN_OR_RETURN(NodePtr doc, ctx->ResolveDocument(uri));
      return One(std::move(doc));
    });
    add("fn:document", 1, 1, [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(std::string uri, StringArg(a[0], "fn:document"));
      XQC_ASSIGN_OR_RETURN(NodePtr doc, ctx->ResolveDocument(uri));
      return One(std::move(doc));
    });
    add("fn:doc-available", 1, 1,
        [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
          if (a[0].empty()) return BoolSeq(false);
          XQC_ASSIGN_OR_RETURN(std::string uri,
                               StringArg(a[0], "fn:doc-available"));
          XQC_ASSIGN_OR_RETURN(bool ok, ctx->DocumentAvailable(uri));
          return BoolSeq(ok);
        });
    add("fn:collection", 0, 1,
        [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
          if (a.empty() || a[0].empty()) {
            // No default collection is defined (FODC0002 per F&O 15.5.6).
            return Status::IOError(
                "fn:collection: no default collection is defined");
          }
          XQC_ASSIGN_OR_RETURN(std::string uri,
                               StringArg(a[0], "fn:collection"));
          XQC_ASSIGN_OR_RETURN(std::shared_ptr<const ResolvedCollection> col,
                               ctx->ResolveCollection(uri));
          Sequence out;
          out.reserve(col->docs.size());
          for (const NodePtr& doc : col->docs) out.push_back(Item(doc));
          return out;
        });
    add("fn:uri-collection", 0, 1,
        [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
          if (a.empty() || a[0].empty()) {
            return Status::IOError(
                "fn:uri-collection: no default collection is defined");
          }
          XQC_ASSIGN_OR_RETURN(std::string uri,
                               StringArg(a[0], "fn:uri-collection"));
          XQC_ASSIGN_OR_RETURN(std::vector<std::string> uris,
                               ctx->CollectionUris(uri));
          Sequence out;
          out.reserve(uris.size());
          for (std::string& u : uris) {
            out.push_back(Item(AtomicValue::String(std::move(u))));
          }
          return out;
        });
    add("fn:root", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      if (a[0].empty()) return None();
      if (!a[0][0].IsNode()) {
        return Status::XQueryError("XPTY0004", "fn:root of an atomic value");
      }
      return One(a[0][0].node()->Root()->shared_from_this());
    });
    add("fn:name", 1, 1, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      if (a[0].empty()) return One(AtomicValue::String(""));
      if (!a[0][0].IsNode()) {
        return Status::XQueryError("XPTY0004", "fn:name of an atomic value");
      }
      return One(AtomicValue::String(a[0][0].node()->name.str()));
    });
    add("fn:local-name", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          if (a[0].empty()) return One(AtomicValue::String(""));
          if (!a[0][0].IsNode()) {
            return Status::XQueryError("XPTY0004", "fn:local-name of an atomic");
          }
          const std::string& n = a[0][0].node()->name.str();
          size_t colon = n.rfind(':');
          return One(AtomicValue::String(
              colon == std::string::npos ? n : n.substr(colon + 1)));
        });
    add("fn:error", 0, 2, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      std::string msg = "fn:error invoked";
      if (a.size() >= 2 && !a[1].empty()) msg = a[1][0].StringValue();
      return Status::XQueryError("FOER0000", msg);
    });

    // -- op:* arithmetic --
    add("op:plus", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kAdd, a); });
    add("op:minus", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kSub, a); });
    add("op:times", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kMul, a); });
    add("op:div", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kDiv, a); });
    add("op:idiv", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kIDiv, a); });
    add("op:mod", 2, 2, [](const Args& a, DynamicContext*) { return Arith(NumOp::kMod, a); });
    add("op:unary-minus", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence atoms, AtomizeOpt(a[0], "unary minus"));
          if (atoms.empty()) return None();
          XQC_ASSIGN_OR_RETURN(AtomicValue v,
                               NumericOperand(atoms[0].atomic(), "unary minus"));
          if (v.type() == AtomicType::kInteger) {
            return One(AtomicValue::Integer(-v.AsInt()));
          }
          if (v.type() == AtomicType::kDecimal) {
            return One(AtomicValue::Decimal(-v.AsDouble()));
          }
          if (v.type() == AtomicType::kFloat) {
            return One(AtomicValue::Float(-v.AsDouble()));
          }
          return One(AtomicValue::Double(-v.AsDouble()));
        });

    // -- op:* comparisons --
    struct OpComp { const char* name; CompOp op; };
    static const OpComp kOps[] = {{"eq", CompOp::kEq}, {"ne", CompOp::kNe},
                                  {"lt", CompOp::kLt}, {"le", CompOp::kLe},
                                  {"gt", CompOp::kGt}, {"ge", CompOp::kGe}};
    for (const OpComp& oc : kOps) {
      CompOp op = oc.op;
      add((std::string("op:") + oc.name).c_str(), 2, 2,
          [op](const Args& a, DynamicContext*) { return ValueComp(op, a); });
      add((std::string("op:general-") + oc.name).c_str(), 2, 2,
          [op](const Args& a, DynamicContext*) { return GeneralComp(op, a); });
    }

    // -- op:* logic / ranges / node ops --
    add("op:and", 2, 2, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(bool x, EffectiveBooleanValue(a[0]));
      XQC_ASSIGN_OR_RETURN(bool y, EffectiveBooleanValue(a[1]));
      return BoolSeq(x && y);
    });
    add("op:or", 2, 2, [](const Args& a, DynamicContext*) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(bool x, EffectiveBooleanValue(a[0]));
      XQC_ASSIGN_OR_RETURN(bool y, EffectiveBooleanValue(a[1]));
      return BoolSeq(x || y);
    });
    add("op:to", 2, 2,
        [](const Args& a, DynamicContext* ctx) -> Result<Sequence> {
      XQC_ASSIGN_OR_RETURN(Sequence lo, AtomizeOpt(a[0], "op:to"));
      XQC_ASSIGN_OR_RETURN(Sequence hi, AtomizeOpt(a[1], "op:to"));
      if (lo.empty() || hi.empty()) return None();
      XQC_ASSIGN_OR_RETURN(AtomicValue l, CastTo(lo[0].atomic(), AtomicType::kInteger));
      XQC_ASSIGN_OR_RETURN(AtomicValue h, CastTo(hi[0].atomic(), AtomicType::kInteger));
      // A range materializes its whole sequence, so huge literals
      // ("1 to 2000000000") must stay interruptible: charge the budget up
      // front and keep checking the deadline while filling.
      QueryGuard* g = ctx != nullptr ? ctx->guard() : nullptr;
      int64_t first = l.AsInt(), last = h.AsInt();
      if (g != nullptr && last >= first) {
        XQC_RETURN_IF_ERROR(g->AccountItems(last - first + 1));
      }
      Sequence out;
      for (int64_t i = first; i <= last; i++) {
        if (g != nullptr && ((i - first) & 1023) == 0) {
          XQC_RETURN_IF_ERROR(g->Check());
        }
        out.push_back(AtomicValue::Integer(i));
      }
      return out;
    });
    add("op:union", 2, 2, [](const Args& a, DynamicContext*) {
      return NodeSetOp(a, "union", 'u');
    });
    add("op:intersect", 2, 2, [](const Args& a, DynamicContext*) {
      return NodeSetOp(a, "intersect", 'i');
    });
    add("op:except", 2, 2, [](const Args& a, DynamicContext*) {
      return NodeSetOp(a, "except", 'e');
    });
    auto node_comp = [](const Args& a, int mode) -> Result<Sequence> {
      if (a[0].empty() || a[1].empty()) return None();
      if (a[0].size() > 1 || a[1].size() > 1 || !a[0][0].IsNode() ||
          !a[1][0].IsNode()) {
        return Status::XQueryError("XPTY0004",
                                   "node comparison on non-singleton-node");
      }
      const Node* x = a[0][0].node().get();
      const Node* y = a[1][0].node().get();
      bool r = mode == 0 ? x == y
               : mode < 0 ? DocOrderLess(x, y)
                          : DocOrderLess(y, x);
      return BoolSeq(r);
    };
    add("op:is-same-node", 2, 2,
        [node_comp](const Args& a, DynamicContext*) { return node_comp(a, 0); });
    add("op:node-before", 2, 2,
        [node_comp](const Args& a, DynamicContext*) { return node_comp(a, -1); });
    add("op:node-after", 2, 2,
        [node_comp](const Args& a, DynamicContext*) { return node_comp(a, 1); });

    // -- fs:* helpers --
    add("fs:distinct-docorder", 1, 1,
        [](const Args& a, DynamicContext*) { return DistinctDocOrder(a[0]); });
    add("fs:avt-piece", 1, 1,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          // One attribute-value-template piece: atomize and space-join.
          XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(a[0]));
          std::string out;
          for (size_t i = 0; i < atoms.size(); i++) {
            if (i > 0) out.push_back(' ');
            out += atoms[i].atomic().Lexical();
          }
          return One(AtomicValue::String(std::move(out)));
        });
    add("fs:predicate-truth", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          // Dynamic XPath predicate semantics: a singleton numeric value
          // tests the context position; anything else takes its EBV.
          if (a[0].size() == 1 && a[0][0].IsAtomic() &&
              a[0][0].atomic().is_numeric()) {
            XQC_ASSIGN_OR_RETURN(
                bool eq, ValueCompareAtomic(CompOp::kEq, a[0][0].atomic(),
                                            a[1][0].atomic()));
            return BoolSeq(eq);
          }
          XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(a[0]));
          return BoolSeq(b);
        });
    add("fs:convert-operand", 2, 2,
        [](const Args& a, DynamicContext*) -> Result<Sequence> {
          XQC_ASSIGN_OR_RETURN(Sequence x, AtomizeOpt(a[0], "fs:convert-operand"));
          XQC_ASSIGN_OR_RETURN(Sequence y, AtomizeOpt(a[1], "fs:convert-operand"));
          if (x.empty()) return None();
          AtomicType yt = y.empty() ? AtomicType::kString : y[0].atomic().type();
          XQC_ASSIGN_OR_RETURN(AtomicValue v, ConvertOperand(x[0].atomic(), yt));
          return One(std::move(v));
        });

    return m;
  }();
  return *kReg;
}

}  // namespace

bool IsBuiltinFunction(Symbol name) {
  return Registry().count(name.str()) > 0;
}

Result<Sequence> CallBuiltin(Symbol name, const std::vector<Sequence>& args,
                             DynamicContext* ctx) {
  auto it = Registry().find(name.str());
  if (it == Registry().end()) {
    return Status::XQueryError("XPST0017",
                               "unknown function " + name.str());
  }
  const Builtin& b = it->second;
  int n = static_cast<int>(args.size());
  if (n < b.min_arity || (b.max_arity >= 0 && n > b.max_arity)) {
    return ArityError(name.str(), args.size());
  }
  return b.fn(args, ctx);
}

std::vector<Symbol> AllBuiltinFunctions() {
  std::vector<Symbol> out;
  for (const auto& [name, b] : Registry()) out.push_back(Symbol(name));
  return out;
}

}  // namespace xqc
