// The dynamic evaluation context: available documents, the in-scope schema,
// and external/global variable bindings. Shared by the baseline interpreter
// and the algebra evaluator (the paper's "algebra context", Section 3).
#ifndef XQC_RUNTIME_CONTEXT_H_
#define XQC_RUNTIME_CONTEXT_H_

#include <string>
#include <unordered_map>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/types/schema.h"
#include "src/xml/item.h"

namespace xqc {

class DynamicContext {
 public:
  /// Registers an already-parsed document under a URI (fn:doc / Parse
  /// resolve here first, then fall back to the filesystem).
  void RegisterDocument(const std::string& uri, NodePtr doc) {
    documents_[uri] = std::move(doc);
  }

  /// Resolves a document: registry first, filesystem second.
  Result<NodePtr> ResolveDocument(const std::string& uri);

  void set_schema(const Schema* schema) { schema_ = schema; }
  const Schema* schema() const { return schema_; }

  void BindVariable(Symbol name, Sequence value) {
    variables_[name] = std::move(value);
  }
  bool LookupVariable(Symbol name, Sequence* out) const {
    auto it = variables_.find(name);
    if (it == variables_.end()) return false;
    *out = it->second;
    return true;
  }

  /// The resource guard for the currently executing query, or nullptr for
  /// unlimited. Non-owning; installed for the duration of an execution
  /// (normally by PreparedQuery via ScopedGuard below). Both evaluators,
  /// the builtins, and document parsing (fn:doc) consult it.
  void set_guard(QueryGuard* guard) { guard_ = guard; }
  QueryGuard* guard() const { return guard_; }

 private:
  std::unordered_map<std::string, NodePtr> documents_;
  std::unordered_map<Symbol, Sequence> variables_;
  const Schema* schema_ = nullptr;
  QueryGuard* guard_ = nullptr;
};

/// Installs `guard` on `ctx` for the current scope — unless the context
/// already has one, in which case the outer guard stays in charge (nested
/// executions share the outermost query's budget).
class ScopedGuard {
 public:
  ScopedGuard(DynamicContext* ctx, QueryGuard* guard)
      : ctx_(ctx), installed_(ctx->guard() == nullptr) {
    if (installed_) ctx_->set_guard(guard);
  }
  ~ScopedGuard() {
    if (installed_) ctx_->set_guard(nullptr);
  }
  ScopedGuard(const ScopedGuard&) = delete;
  ScopedGuard& operator=(const ScopedGuard&) = delete;

 private:
  DynamicContext* ctx_;
  bool installed_;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_CONTEXT_H_
