// The dynamic evaluation context: available documents, the in-scope schema,
// and external/global variable bindings. Shared by the baseline interpreter
// and the algebra evaluator (the paper's "algebra context", Section 3).
//
// Threading contract (DESIGN.md "Threading model"): a DynamicContext is a
// single-thread object — one context belongs to one thread at a time. The
// *payloads* it points at are shareable: registered documents (NodePtr
// trees), bound variable Sequences, and the Schema are immutable after
// construction, so many contexts on many threads may reference the same
// ones (this is how QueryService serves one document to hundreds of
// concurrent queries). Register/bind everything before sharing the
// payloads; never mutate a Node tree that another context can see.
#ifndef XQC_RUNTIME_CONTEXT_H_
#define XQC_RUNTIME_CONTEXT_H_

#include <string>
#include <unordered_map>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/types/schema.h"
#include "src/xml/item.h"

namespace xqc {

class DynamicContext {
 public:
  /// Registers an already-parsed document under a URI (fn:doc / Parse
  /// resolve here first, then fall back to the filesystem). The registry is
  /// caller-managed and persists across executions.
  void RegisterDocument(const std::string& uri, NodePtr doc) {
    documents_[uri] = std::move(doc);
  }

  /// Resolves a document: registry first, then the per-execution parse
  /// cache, then the filesystem. A document parsed from disk is cached for
  /// the rest of the current execution — repeated fn:doc("f.xml") calls in
  /// one query parse (and charge the guard) once — and is dropped when the
  /// execution ends, so a long-lived context does not serve stale files.
  Result<NodePtr> ResolveDocument(const std::string& uri);

  /// fn:doc-available: whether ResolveDocument would succeed. An
  /// unavailable document answers `false` rather than erroring, but guard
  /// trips (deadline/cancellation while parsing) still propagate. On
  /// success the parsed document is left in the execution cache, so
  /// doc-available followed by doc costs one parse.
  Result<bool> DocumentAvailable(const std::string& uri);

  /// Number of filesystem parses performed by ResolveDocument (registry and
  /// execution-cache hits don't count). Observable by tests.
  int64_t doc_parses() const { return doc_parses_; }

  void set_schema(const Schema* schema) { schema_ = schema; }
  const Schema* schema() const { return schema_; }

  void BindVariable(Symbol name, Sequence value) {
    variables_[name] = std::move(value);
  }
  bool LookupVariable(Symbol name, Sequence* out) const {
    auto it = variables_.find(name);
    if (it == variables_.end()) return false;
    *out = it->second;
    return true;
  }

  /// The resource guard for the currently executing query, or nullptr for
  /// unlimited. Non-owning; installed for the duration of an execution
  /// (normally by PreparedQuery via ScopedGuard below). Both evaluators,
  /// the builtins, and document parsing (fn:doc) consult it.
  void set_guard(QueryGuard* guard) { guard_ = guard; }
  QueryGuard* guard() const { return guard_; }

  /// Marks the start/end of one top-level execution (called by ScopedGuard
  /// when it installs/uninstalls the outermost guard): resets the
  /// per-execution document cache.
  void BeginExecution() { exec_doc_cache_.clear(); }
  void EndExecution() { exec_doc_cache_.clear(); }

 private:
  std::unordered_map<std::string, NodePtr> documents_;
  std::unordered_map<std::string, NodePtr> exec_doc_cache_;
  std::unordered_map<Symbol, Sequence> variables_;
  const Schema* schema_ = nullptr;
  QueryGuard* guard_ = nullptr;
  int64_t doc_parses_ = 0;
};

/// Installs `guard` on `ctx` for the current scope — unless the context
/// already has one, in which case the outer guard stays in charge (nested
/// executions share the outermost query's budget and its document cache).
class ScopedGuard {
 public:
  ScopedGuard(DynamicContext* ctx, QueryGuard* guard)
      : ctx_(ctx), installed_(ctx->guard() == nullptr) {
    if (installed_) {
      ctx_->set_guard(guard);
      ctx_->BeginExecution();
    }
  }
  ~ScopedGuard() {
    if (installed_) {
      ctx_->set_guard(nullptr);
      ctx_->EndExecution();
    }
  }
  ScopedGuard(const ScopedGuard&) = delete;
  ScopedGuard& operator=(const ScopedGuard&) = delete;

 private:
  DynamicContext* ctx_;
  bool installed_;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_CONTEXT_H_
