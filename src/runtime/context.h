// The dynamic evaluation context: available documents, the in-scope schema,
// and external/global variable bindings. Shared by the baseline interpreter
// and the algebra evaluator (the paper's "algebra context", Section 3).
#ifndef XQC_RUNTIME_CONTEXT_H_
#define XQC_RUNTIME_CONTEXT_H_

#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/types/schema.h"
#include "src/xml/item.h"

namespace xqc {

class DynamicContext {
 public:
  /// Registers an already-parsed document under a URI (fn:doc / Parse
  /// resolve here first, then fall back to the filesystem).
  void RegisterDocument(const std::string& uri, NodePtr doc) {
    documents_[uri] = std::move(doc);
  }

  /// Resolves a document: registry first, filesystem second.
  Result<NodePtr> ResolveDocument(const std::string& uri);

  void set_schema(const Schema* schema) { schema_ = schema; }
  const Schema* schema() const { return schema_; }

  void BindVariable(Symbol name, Sequence value) {
    variables_[name] = std::move(value);
  }
  bool LookupVariable(Symbol name, Sequence* out) const {
    auto it = variables_.find(name);
    if (it == variables_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  std::unordered_map<std::string, NodePtr> documents_;
  std::unordered_map<Symbol, Sequence> variables_;
  const Schema* schema_ = nullptr;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_CONTEXT_H_
