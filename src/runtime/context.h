// The dynamic evaluation context: available documents, the in-scope schema,
// and external/global variable bindings. Shared by the baseline interpreter
// and the algebra evaluator (the paper's "algebra context", Section 3).
//
// Threading contract (DESIGN.md "Threading model"): a DynamicContext is a
// single-thread object — one context belongs to one thread at a time. The
// *payloads* it points at are shareable: registered documents (NodePtr
// trees), bound variable Sequences, and the Schema are immutable after
// construction, so many contexts on many threads may reference the same
// ones (this is how QueryService serves one document to hundreds of
// concurrent queries). Register/bind everything before sharing the
// payloads; never mutate a Node tree that another context can see. The
// DocumentStore a context resolves through is itself thread-safe.
#ifndef XQC_RUNTIME_CONTEXT_H_
#define XQC_RUNTIME_CONTEXT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/store/document_store.h"
#include "src/types/schema.h"
#include "src/xml/item.h"

namespace xqc {

/// One resolved collection (fn:collection): the sorted member URIs and one
/// finalized tree per member, both in ordinal (sorted-URI) order. Immutable
/// once built and shareable across threads — the parallel executor hands
/// slices of `docs` to worker partitions.
struct ResolvedCollection {
  std::vector<std::string> uris;  // normalized member URIs, sorted
  std::vector<NodePtr> docs;      // one tree per member, same order
  int64_t skipped = 0;            // bad members skipped (lenient mode)
};

class DynamicContext {
 public:
  /// Registers an already-parsed document under a URI (fn:doc / Parse
  /// resolve here first, before the store and the filesystem). The URI is
  /// normalized (NormalizeDocUri) so "a.xml" and "./a.xml" are one
  /// registration. The registry is caller-managed and persists across
  /// executions.
  void RegisterDocument(const std::string& uri, NodePtr doc) {
    documents_[NormalizeDocUri(uri)] = std::move(doc);
  }

  /// Resolves a document through the chain:
  ///   registry → per-execution cache → DocumentStore → direct parse.
  /// The per-execution cache pins the first tree seen for a URI until the
  /// execution ends, so one query observes a stable snapshot even if the
  /// store hot-reloads the file mid-query; it is dropped when the
  /// execution ends, so a long-lived context does not serve stale files.
  /// The store layer (shared across executions and threads) adds bounded
  /// LRU caching, singleflight loading, retry, and quarantine — see
  /// src/store/document_store.h. With the store disabled (EngineOptions
  /// ablation) documents are parsed directly from disk as before.
  Result<NodePtr> ResolveDocument(const std::string& uri);

  /// fn:doc-available: whether ResolveDocument would succeed. An
  /// unavailable document answers `false` rather than erroring, but guard
  /// trips (deadline/cancellation while parsing) still propagate. On
  /// success the parsed document is left in the execution cache, so
  /// doc-available followed by doc costs one parse.
  Result<bool> DocumentAvailable(const std::string& uri);

  /// fn:collection: resolves a collection URI (directory or '*' glob; see
  /// ListCollectionMembers) to its member documents, loading each member
  /// through the store (or direct parses when the store is disabled).
  ///
  /// Order invariant: members are loaded in sorted-URI (ordinal) order and
  /// the returned trees' interval blocks are *ordinal-increasing* — a
  /// cached member whose block sorts below an earlier member's (cache
  /// evictions reload documents in arbitrary order) is force-reloaded into
  /// a fresh block (DocStoreStats::collection_reorders). Document order
  /// across the collection therefore equals ordinal order, which makes the
  /// serial DDO sort, the static DDO discharge, and the parallel executor's
  /// ordinal-keyed merge all agree, byte for byte (DESIGN.md "Intra-query
  /// parallelism").
  ///
  /// Member failures: in lenient mode (default) a member that is
  /// quarantined (XQC0009), malformed (XPST0003), or vanished mid-scan
  /// (FODC0002) is skipped; guard trips and store-health verdicts
  /// (XQC0001-3/6, XQC0008, XQC0011) always propagate. In strict mode
  /// (set_strict_collections) any member failure fails the whole scan.
  /// The result is cached for the rest of the execution.
  Result<std::shared_ptr<const ResolvedCollection>> ResolveCollection(
      const std::string& uri);

  /// fn:uri-collection: the sorted member URIs only — members are
  /// enumerated but not loaded (an unparseable member is still listed).
  Result<std::vector<std::string>> CollectionUris(const std::string& uri);

  /// Strict collection mode (EngineOptions::strict_collections): any
  /// member failure fails the whole collection scan.
  void set_strict_collections(bool strict) { strict_collections_ = strict; }
  bool strict_collections() const { return strict_collections_; }

  /// Number of filesystem parses performed on behalf of this context
  /// (registry, execution-cache, and store-cache hits don't count; a
  /// singleflight wait served by another query's parse doesn't either).
  /// Observable by tests.
  int64_t doc_parses() const { return doc_parses_; }

  /// The DocumentStore used by ResolveDocument, or nullptr when disabled.
  /// Defaults to the process-wide store; QueryService and tests may point
  /// a context at a private store.
  void set_document_store(DocumentStore* store) { store_ = store; }
  DocumentStore* document_store() const {
    return store_enabled_ ? store_ : nullptr;
  }
  /// Ablation toggle (EngineOptions::use_doc_store): with the store off,
  /// resolution falls back to direct per-execution parsing.
  void set_store_enabled(bool enabled) { store_enabled_ = enabled; }

  /// Toggle for the store's persistent snapshot tier (EngineOptions::
  /// use_snapshots / xqc_shell --no-snapshots); a no-op unless the store
  /// has a snapshot_dir configured.
  void set_snapshots_enabled(bool enabled) { snapshots_enabled_ = enabled; }
  bool snapshots_enabled() const { return snapshots_enabled_; }

  /// Per-execution DocumentStore counters, reset by BeginExecution and
  /// merged into ExecStats::doc_store by the engine.
  const DocStoreStats& doc_store_stats() const { return doc_store_stats_; }

  void set_schema(const Schema* schema) { schema_ = schema; }
  const Schema* schema() const { return schema_; }

  void BindVariable(Symbol name, Sequence value) {
    variables_[name] = std::move(value);
  }
  bool LookupVariable(Symbol name, Sequence* out) const {
    auto it = variables_.find(name);
    if (it == variables_.end()) return false;
    *out = it->second;
    return true;
  }

  /// The resource guard for the currently executing query, or nullptr for
  /// unlimited. Non-owning; installed for the duration of an execution
  /// (normally by PreparedQuery via ScopedGuard below). Both evaluators,
  /// the builtins, and document parsing (fn:doc) consult it.
  void set_guard(QueryGuard* guard) { guard_ = guard; }
  QueryGuard* guard() const { return guard_; }

  /// Marks the start/end of one top-level execution (called by ScopedGuard
  /// when it installs/uninstalls the outermost guard): resets the
  /// per-execution document/collection caches and store counters.
  void BeginExecution() {
    exec_doc_cache_.clear();
    exec_collection_cache_.clear();
    doc_store_stats_ = DocStoreStats{};
  }
  void EndExecution() {
    exec_doc_cache_.clear();
    exec_collection_cache_.clear();
  }

  /// Initializes this context as a parallel-partition worker copy of
  /// `parent`: registry, variables, schema, store configuration, strictness
  /// flag, and the per-execution document/collection caches (so a worker
  /// resolves the same pinned trees the driver saw). The guard is NOT
  /// copied — the parallel executor installs a per-partition guard slice.
  /// `parent` must not be mutated while workers are seeding from it.
  void SeedFrom(const DynamicContext& parent) {
    documents_ = parent.documents_;
    variables_ = parent.variables_;
    schema_ = parent.schema_;
    store_ = parent.store_;
    store_enabled_ = parent.store_enabled_;
    snapshots_enabled_ = parent.snapshots_enabled_;
    strict_collections_ = parent.strict_collections_;
    exec_doc_cache_ = parent.exec_doc_cache_;
    exec_collection_cache_ = parent.exec_collection_cache_;
  }

 private:
  std::unordered_map<std::string, NodePtr> documents_;
  std::unordered_map<std::string, NodePtr> exec_doc_cache_;
  std::unordered_map<std::string, std::shared_ptr<const ResolvedCollection>>
      exec_collection_cache_;
  std::unordered_map<Symbol, Sequence> variables_;
  const Schema* schema_ = nullptr;
  QueryGuard* guard_ = nullptr;
  DocumentStore* store_ = DocumentStore::Global();
  bool store_enabled_ = true;
  bool snapshots_enabled_ = true;
  bool strict_collections_ = false;
  DocStoreStats doc_store_stats_;
  int64_t doc_parses_ = 0;
};

/// Installs `guard` on `ctx` for the current scope — unless the context
/// already has one, in which case the outer guard stays in charge (nested
/// executions share the outermost query's budget, its document cache, and
/// its store setting).
class ScopedGuard {
 public:
  ScopedGuard(DynamicContext* ctx, QueryGuard* guard, bool use_store = true,
              bool use_snapshots = true, bool strict_collections = false)
      : ctx_(ctx), installed_(ctx->guard() == nullptr) {
    if (installed_) {
      ctx_->set_guard(guard);
      ctx_->set_store_enabled(use_store);
      ctx_->set_snapshots_enabled(use_snapshots);
      ctx_->set_strict_collections(strict_collections);
      ctx_->BeginExecution();
    }
  }
  ~ScopedGuard() {
    if (installed_) {
      ctx_->set_guard(nullptr);
      ctx_->set_store_enabled(true);
      ctx_->set_snapshots_enabled(true);
      ctx_->set_strict_collections(false);
      ctx_->EndExecution();
    }
  }
  ScopedGuard(const ScopedGuard&) = delete;
  ScopedGuard& operator=(const ScopedGuard&) = delete;

 private:
  DynamicContext* ctx_;
  bool installed_;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_CONTEXT_H_
