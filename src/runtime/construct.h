// Node construction semantics shared by the Element/Attribute/Text/...
// algebra operators and the baseline interpreter.
//
// Unlike the serializing Ξ operator of May et al. (which the paper
// explicitly rejects as non-compositional, Section 3), these build real
// nodes that later operators can navigate into.
#ifndef XQC_RUNTIME_CONSTRUCT_H_
#define XQC_RUNTIME_CONSTRUCT_H_

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/xml/item.h"

namespace xqc {

/// Builds an element from evaluated content: leading attribute nodes become
/// attributes (an attribute after other content raises XQTY0024); atomic
/// runs join into text nodes separated by single spaces; nodes are
/// deep-copied (construction mode "preserve": type annotations kept). The
/// result is finalized (fresh document order).
///
/// The optional guard (non-owning, nullptr = unlimited) is charged for
/// every node the constructor materializes — including each node of a
/// deep-copied subtree — so unbounded construction trips the query's
/// memory budget.
Result<NodePtr> ConstructElement(Symbol name, const Sequence& content,
                                 QueryGuard* guard = nullptr);

/// Builds an attribute node; content atomizes and joins with spaces.
Result<NodePtr> ConstructAttribute(Symbol name, const Sequence& content,
                                   QueryGuard* guard = nullptr);

/// Builds a text node; returns empty sequence semantics via nullptr when
/// the content is empty.
Result<NodePtr> ConstructText(const Sequence& content,
                              QueryGuard* guard = nullptr);

Result<NodePtr> ConstructComment(const Sequence& content,
                                 QueryGuard* guard = nullptr);
Result<NodePtr> ConstructPI(Symbol target, const Sequence& content,
                            QueryGuard* guard = nullptr);
Result<NodePtr> ConstructDocument(const Sequence& content,
                                  QueryGuard* guard = nullptr);

}  // namespace xqc

#endif  // XQC_RUNTIME_CONSTRUCT_H_
