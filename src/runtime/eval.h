// The algebra evaluator: interprets Table 1 plans over the physical data
// model, with pluggable join algorithms (Section 6) and two execution
// modes: the original materializing mode (every operator computes its
// full table) and a pull-based iterator mode (iterator.h) that streams
// table-side operators and terminates early under fn:exists / fn:empty /
// positional heads / fn:subsequence / quantifiers.
#ifndef XQC_RUNTIME_EVAL_H_
#define XQC_RUNTIME_EVAL_H_

#include <unordered_map>
#include <vector>

#include "src/algebra/op.h"
#include "src/compile/compiler.h"
#include "src/runtime/context.h"
#include "src/runtime/iterator.h"
#include "src/runtime/tuple.h"
#include "src/types/compare.h"

namespace xqc {

/// Physical join algorithm selection (Table 3's "nested-loop joins" vs
/// "XQuery joins" configurations; Table 4's NL Join vs Hash Join columns).
enum class JoinImpl {
  kNestedLoop,  // order-preserving nested loops, any predicate
  kHash,        // Figure 6 hash join for op:general-eq predicates
  kSort,        // ordered-index (B-tree style) variant of Figure 6
};

struct ExecOptions {
  JoinImpl join_impl = JoinImpl::kHash;
  /// Pull-based iterator execution with early termination. Results are
  /// identical to the materializing mode except that early termination
  /// may skip errors in input suffixes a limited consumer never needs
  /// (permitted by XQuery's evaluation-order rules).
  bool streaming = false;
  /// Always discharge TreeJoin's distinct-doc-order postcondition with the
  /// full sort, ignoring static/dynamic elision (baseline / oracle mode).
  bool force_sort = false;
  /// Consult (and lazily build) per-document structural indexes for
  /// descendant / following / preceding steps.
  bool use_doc_index = true;
  /// Tuples moved per NextBatch() call in streaming mode. 1 = the
  /// tuple-at-a-time oracle (every operator pulls through Next());
  /// values > 1 drive full-consumption pipelines through TupleBatch.
  /// Limited consumers (fn:exists, EBV prefixes, fn:subsequence,
  /// quantifiers) always run tuple-at-a-time — their demand is inherently
  /// one tuple — so early-exit behavior and stats match the oracle
  /// exactly. Ignored in materializing mode.
  int batch_size = 1024;
};

/// "No limit" for the limited evaluation entry points.
inline constexpr size_t kEvalNoLimit = static_cast<size_t>(-1);

/// Execution statistics (observable by tests and benches).
struct ExecStats {
  int64_t hash_joins = 0;
  int64_t sort_joins = 0;
  int64_t range_joins = 0;  // inequality sort joins
  int64_t nested_loop_joins = 0;
  int64_t group_bys = 0;
  int64_t join_index_reuses = 0;   // cached inner-index hits
  int64_t specialized_joins = 0;   // statically typed key modes used
  int64_t source_tuples = 0;       // tuples produced by MapFromItem
  int64_t streaming_early_stops = 0;  // limited consumers that cut input
  int64_t guard_checks = 0;        // QueryGuard slow-path checks run
  int64_t guard_steps = 0;         // amortized eval steps credited
  int64_t peak_memory_bytes = 0;   // total guard-accounted allocation
  TreeJoinStats tree_join;         // sort elisions / index use (axes.h)
  DocStoreStats doc_store;         // fn:doc resolution (document_store.h)
  // --- intra-query parallelism (runtime/parallel.h) ---
  int64_t parallel_partitions = 0;   // partition units executed
  int64_t parallel_range_splits = 0; // units from intra-doc range splitting
  int64_t parallel_steals = 0;       // units run by pool helpers (not driver)
  int64_t parallel_merges = 0;       // ordinal-merge recombinations
  int64_t parallel_fallbacks = 0;    // parallel requested, ran serial
};

/// Evaluation context threaded through a plan: the dependent inputs (tuple
/// and/or item-sequence IN) plus the function-parameter environment.
struct EvalCtx {
  const Tuple* tuple = nullptr;
  const Sequence* items = nullptr;
  const std::unordered_map<Symbol, Sequence>* params = nullptr;
};

class MaterializedInner;       // joins.h: Figure 6 equality index
class MaterializedRangeInner;  // joins.h: ordered range index

/// The physical plan chosen for one Join / LOuterJoin execution: which
/// conjunct (if any) drives an index, the prebuilt inner index, and the
/// residual conjuncts. Built once per join execution (PlanJoinStrategy)
/// and then probed per left tuple (ProbeJoinTuple) — the same machinery
/// backs the materializing and the streaming join.
struct JoinStrategy {
  enum class Kind {
    kNestedLoop,  // full predicate per concatenated tuple
    kNoMatch,     // statically incompatible key types: nothing matches
    kEquality,    // Figure 6 hash / ordered-index equality join
    kInequality,  // range sort join
  };
  Kind kind = Kind::kNestedLoop;
  const Op* left_key = nullptr;
  CompOp comp = CompOp::kEq;
  std::vector<const Op*> residual;  // non-key conjuncts
  std::shared_ptr<const MaterializedInner> eq_index;
  std::shared_ptr<const MaterializedRangeInner> range_index;
};

/// One partition unit's slice of a parallelized plan (runtime/parallel.cc):
/// when installed on a PlanEvaluator, the plan's Call[fn:collection] source
/// op (`source`) evaluates to `docs` instead of resolving the collection,
/// and — for range-split units — the output of the single downward TreeJoin
/// (`range_split`) is filtered to nodes with start in [range_lo, range_hi).
struct PartitionSlice {
  const Op* source = nullptr;
  Sequence docs;
  const Op* range_split = nullptr;  // nullptr = whole-document unit
  uint64_t range_lo = 0;
  uint64_t range_hi = 0;
};

class PlanEvaluator {
 public:
  PlanEvaluator(const CompiledQuery* query, DynamicContext* ctx,
                const ExecOptions& options = {});

  /// Evaluates prolog globals (in order) and then the main plan.
  Result<Sequence> Run();

  /// Evaluates just the prolog globals (for callers that then pull the
  /// main plan incrementally through OpenTable).
  Status PrepareGlobals();

  /// Typed evaluation entry points (IN resolves per expected type).
  Result<Sequence> EvalItems(const Op& op, const EvalCtx& c);
  Result<Table> EvalTable(const Op& op, const EvalCtx& c);
  Result<Tuple> EvalTuple(const Op& op, const EvalCtx& c);

  /// Like EvalItems, but in streaming mode the caller promises it only
  /// inspects a prefix: evaluation may stop once `limit` items exist
  /// (the result can still be longer). Falls back to EvalItems when not
  /// streaming or limit is kEvalNoLimit.
  Result<Sequence> EvalItemsLimited(const Op& op, const EvalCtx& c,
                                    size_t limit);

  /// Opens a pull iterator over a table-side operator (iterator.cc).
  /// The EvalCtx's pointees must outlive the iterator. GroupBy/OrderBy
  /// and non-table operators materialize behind the iterator.
  Result<TupleIteratorPtr> OpenTable(const Op& op, const EvalCtx& c);

  /// Effective boolean value of a dependent predicate on tuple `t`.
  Result<bool> EvalPredicate(const Op& pred, const Tuple& t, const EvalCtx& c);

  /// Join machinery shared by EvalJoin and the streaming JoinIter.
  /// MaterializeJoinRight evaluates (or fetches from cache) the inner
  /// side; PlanJoinStrategy picks the physical algorithm using the field
  /// layout of a representative left tuple; ProbeJoinTuple appends all
  /// output rows for one left tuple.
  Result<std::shared_ptr<const Table>> MaterializeJoinRight(
      const Op& op, const EvalCtx& c, bool* cacheable);
  Result<JoinStrategy> PlanJoinStrategy(
      const Op& op, const EvalCtx& c, const Tuple& first_left,
      const std::shared_ptr<const Table>& right, bool right_cacheable);
  Status ProbeJoinTuple(const Op& op, const JoinStrategy& strategy,
                        const EvalCtx& c, const Tuple& left,
                        const Table& right, bool outer, Table* out);

  const ExecStats& stats() const { return stats_; }
  ExecStats* mutable_stats() { return &stats_; }
  const ExecOptions& options() const { return options_; }

  /// Installs a partition slice (see PartitionSlice). Non-owning; the
  /// slice must outlive evaluation. nullptr restores normal evaluation.
  void set_partition_slice(const PartitionSlice* slice) { slice_ = slice; }
  /// Seeds the prolog-global environment from an already-prepared driver
  /// evaluator (parallel workers must not re-evaluate globals).
  void SeedGlobals(const std::unordered_map<Symbol, Sequence>& globals) {
    globals_ = globals;
    globals_prepared_ = true;
  }
  const std::unordered_map<Symbol, Sequence>& globals() const {
    return globals_;
  }
  /// The active resource guard: the context's, or a shared always-
  /// unlimited guard when none is installed (so check sites are
  /// unconditional). Never nullptr.
  QueryGuard* guard() const { return guard_; }

 private:
  Result<Table> EvalJoin(const Op& op, const EvalCtx& c, bool outer);
  Result<Table> EvalGroupBy(const Op& op, const EvalCtx& c);
  Result<Table> EvalOrderBy(const Op& op, const EvalCtx& c);
  Result<Sequence> EvalCall(const Op& op, const EvalCtx& c);
  Result<Sequence> EvalConstructor(const Op& op, const EvalCtx& c);
  /// Streaming MapToItem: pulls input tuples on demand, stopping once
  /// `limit` items have been produced.
  Result<Sequence> EvalMapToItem(const Op& op, const EvalCtx& c,
                                 size_t limit);

  const CompiledQuery* query_;
  DynamicContext* ctx_;
  ExecOptions options_;
  QueryGuard* guard_;  // ctx's guard or the shared unlimited fallback
  std::unordered_map<Symbol, Sequence> globals_;
  bool globals_prepared_ = false;
  const PartitionSlice* slice_ = nullptr;
  ExecStats stats_;
  int depth_ = 0;

  /// Caches for IN-independent join inputs: a correlated subplan may
  /// re-execute its joins per outer tuple; the independent inner table and
  /// its Figure 6 index only need to be built once (the paper's
  /// "index-hash and B-tree index joins").
  struct CachedInner {
    std::shared_ptr<const Table> table;
    std::shared_ptr<const void> index;  // MaterializedInner, type-erased
  };
  std::unordered_map<const Op*, std::shared_ptr<const Table>> table_cache_;
  std::unordered_map<const Op*, CachedInner> inner_cache_;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_EVAL_H_
