// The algebra evaluator: interprets Table 1 plans over the physical data
// model (materialized tables), with pluggable join algorithms (Section 6).
#ifndef XQC_RUNTIME_EVAL_H_
#define XQC_RUNTIME_EVAL_H_

#include <unordered_map>

#include "src/algebra/op.h"
#include "src/compile/compiler.h"
#include "src/runtime/context.h"
#include "src/runtime/tuple.h"

namespace xqc {

/// Physical join algorithm selection (Table 3's "nested-loop joins" vs
/// "XQuery joins" configurations; Table 4's NL Join vs Hash Join columns).
enum class JoinImpl {
  kNestedLoop,  // order-preserving nested loops, any predicate
  kHash,        // Figure 6 hash join for op:general-eq predicates
  kSort,        // ordered-index (B-tree style) variant of Figure 6
};

struct ExecOptions {
  JoinImpl join_impl = JoinImpl::kHash;
};

/// Execution statistics (observable by tests and benches).
struct ExecStats {
  int64_t hash_joins = 0;
  int64_t sort_joins = 0;
  int64_t range_joins = 0;  // inequality sort joins
  int64_t nested_loop_joins = 0;
  int64_t group_bys = 0;
  int64_t join_index_reuses = 0;   // cached inner-index hits
  int64_t specialized_joins = 0;   // statically typed key modes used
};

/// Evaluation context threaded through a plan: the dependent inputs (tuple
/// and/or item-sequence IN) plus the function-parameter environment.
struct EvalCtx {
  const Tuple* tuple = nullptr;
  const Sequence* items = nullptr;
  const std::unordered_map<Symbol, Sequence>* params = nullptr;
};

class PlanEvaluator {
 public:
  PlanEvaluator(const CompiledQuery* query, DynamicContext* ctx,
                const ExecOptions& options = {});

  /// Evaluates prolog globals (in order) and then the main plan.
  Result<Sequence> Run();

  /// Typed evaluation entry points (IN resolves per expected type).
  Result<Sequence> EvalItems(const Op& op, const EvalCtx& c);
  Result<Table> EvalTable(const Op& op, const EvalCtx& c);
  Result<Tuple> EvalTuple(const Op& op, const EvalCtx& c);

  const ExecStats& stats() const { return stats_; }

 private:
  Result<Table> EvalJoin(const Op& op, const EvalCtx& c, bool outer);
  Result<Table> EvalGroupBy(const Op& op, const EvalCtx& c);
  Result<Table> EvalOrderBy(const Op& op, const EvalCtx& c);
  Result<Sequence> EvalCall(const Op& op, const EvalCtx& c);
  Result<Sequence> EvalConstructor(const Op& op, const EvalCtx& c);
  Result<bool> EvalPredicate(const Op& pred, const Tuple& t, const EvalCtx& c);

  const CompiledQuery* query_;
  DynamicContext* ctx_;
  ExecOptions options_;
  std::unordered_map<Symbol, Sequence> globals_;
  ExecStats stats_;
  int depth_ = 0;

  /// Caches for IN-independent join inputs: a correlated subplan may
  /// re-execute its joins per outer tuple; the independent inner table and
  /// its Figure 6 index only need to be built once (the paper's
  /// "index-hash and B-tree index joins").
  struct CachedInner {
    std::shared_ptr<const Table> table;
    std::shared_ptr<const void> index;  // MaterializedInner, type-erased
  };
  std::unordered_map<const Op*, std::shared_ptr<const Table>> table_cache_;
  std::unordered_map<const Op*, CachedInner> inner_cache_;
};

}  // namespace xqc

#endif  // XQC_RUNTIME_EVAL_H_
