#include "src/runtime/eval.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "src/runtime/builtins.h"
#include "src/runtime/construct.h"
#include "src/runtime/joins.h"
#include "src/types/compare.h"
#include "src/xml/project.h"
#include "src/xml/serializer.h"

namespace xqc {
namespace {

constexpr int kMaxRecursionDepth = 4096;

Result<int> CompareOrderKeys(const Sequence& a, const Sequence& b,
                             bool empty_greatest) {
  if (a.empty() && b.empty()) return 0;
  if (a.empty()) return empty_greatest ? 1 : -1;
  if (b.empty()) return empty_greatest ? -1 : 1;
  AtomicValue x = a[0].atomic(), y = b[0].atomic();
  if (x.type() == AtomicType::kUntypedAtomic) {
    x = AtomicValue::String(x.AsString());
  }
  if (y.type() == AtomicType::kUntypedAtomic) {
    y = AtomicValue::String(y.AsString());
  }
  XQC_ASSIGN_OR_RETURN(bool lt, AtomicCompare(CompOp::kLt, x, y));
  if (lt) return -1;
  XQC_ASSIGN_OR_RETURN(bool gt, AtomicCompare(CompOp::kGt, x, y));
  if (gt) return 1;
  return 0;
}

/// Maps an op:general-* call name to its comparison operator.
bool GeneralCompName(Symbol name, CompOp* op) {
  const std::string& s = name.str();
  if (s.rfind("op:general-", 0) != 0) return false;
  std::string suffix = s.substr(11);
  static const std::pair<const char*, CompOp> kOps[] = {
      {"eq", CompOp::kEq}, {"ne", CompOp::kNe}, {"lt", CompOp::kLt},
      {"le", CompOp::kLe}, {"gt", CompOp::kGt}, {"ge", CompOp::kGe}};
  for (const auto& [n, o] : kOps) {
    if (suffix == n) {
      *op = o;
      return true;
    }
  }
  return false;
}

CompOp MirrorOp(CompOp op) {
  switch (op) {
    case CompOp::kLt: return CompOp::kGt;
    case CompOp::kLe: return CompOp::kGe;
    case CompOp::kGt: return CompOp::kLt;
    case CompOp::kGe: return CompOp::kLe;
    default: return op;  // eq/ne are symmetric
  }
}

/// Is `op` a general-comparison call whose two argument plans partition
/// into left-side / right-side key expressions? (The join recognizer
/// feeding the Section 6 algorithms.) `lf` / `rf` are the field layouts of
/// a representative tuple from each side. On success sets the operator as
/// seen from `left_key OP right_key` (mirrored if the arguments were
/// swapped).
bool IsIndexableComparison(const Op& pred, const std::set<Symbol>& lf,
                           const std::set<Symbol>& rf, const Op** left_key,
                           const Op** right_key, CompOp* comp) {
  if (pred.kind != OpKind::kCall || pred.inputs.size() != 2 ||
      !GeneralCompName(pred.name, comp)) {
    return false;
  }
  auto side_of = [&](const Op& key) -> int {
    std::vector<Symbol> used;
    CollectOuterFieldUses(key, &used);
    bool in_l = true, in_r = true;
    for (Symbol f : used) {
      if (lf.count(f) == 0) in_l = false;
      if (rf.count(f) == 0) in_r = false;
    }
    if (used.empty()) return 0;  // constant key: either side
    if (in_l && !in_r) return -1;
    if (in_r && !in_l) return 1;
    return 2;  // mixed / unknown
  };
  int s0 = side_of(*pred.inputs[0]);
  int s1 = side_of(*pred.inputs[1]);
  if ((s0 == -1 || s0 == 0) && (s1 == 1 || s1 == 0)) {
    *left_key = pred.inputs[0].get();
    *right_key = pred.inputs[1].get();
    return true;
  }
  if ((s0 == 1) && (s1 == -1 || s1 == 0)) {
    *left_key = pred.inputs[1].get();
    *right_key = pred.inputs[0].get();
    *comp = MirrorOp(*comp);
    return true;
  }
  return false;
}

}  // namespace

PlanEvaluator::PlanEvaluator(const CompiledQuery* query, DynamicContext* ctx,
                             const ExecOptions& options)
    : query_(query),
      ctx_(ctx),
      options_(options),
      guard_(ctx->guard() != nullptr ? ctx->guard() : UnlimitedGuard()) {}

Status PlanEvaluator::PrepareGlobals() {
  if (globals_prepared_) return Status::OK();
  globals_prepared_ = true;
  for (const auto& [name, plan] : query_->globals) {
    if (plan == nullptr) {
      Sequence v;
      if (!ctx_->LookupVariable(name, &v)) {
        return Status::XQueryError(
            "XPDY0002", "external variable $" + name.str() + " not bound");
      }
      globals_[name] = std::move(v);
      continue;
    }
    XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*plan, EvalCtx{}));
    globals_[name] = std::move(v);
  }
  return Status::OK();
}

Result<Sequence> PlanEvaluator::Run() {
  XQC_RETURN_IF_ERROR(PrepareGlobals());
  return EvalItems(*query_->plan, EvalCtx{});
}

Result<bool> PlanEvaluator::EvalPredicate(const Op& pred, const Tuple& t,
                                          const EvalCtx& c) {
  EvalCtx pc = c;
  pc.tuple = &t;
  pc.items = nullptr;
  // The effective boolean value is decidable from a 2-item prefix (empty,
  // first-item-node, or the >1-atomics error), so streaming mode bounds
  // the predicate's evaluation.
  XQC_ASSIGN_OR_RETURN(Sequence v, EvalItemsLimited(pred, pc, 2));
  return EffectiveBooleanValue(v);
}

Result<Sequence> PlanEvaluator::EvalItemsLimited(const Op& op, const EvalCtx& c,
                                                 size_t limit) {
  if (!options_.streaming || limit == kEvalNoLimit) return EvalItems(op, c);
  switch (op.kind) {
    case OpKind::kMapToItem:
      return EvalMapToItem(op, c, limit);
    case OpKind::kSequence: {
      Sequence out;
      for (const OpPtr& i : op.inputs) {
        if (out.size() >= limit) {
          stats_.streaming_early_stops++;
          break;
        }
        XQC_ASSIGN_OR_RETURN(Sequence v,
                             EvalItemsLimited(*i, c, limit - out.size()));
        Extend(&out, std::move(v));
      }
      return out;
    }
    case OpKind::kCond: {
      XQC_ASSIGN_OR_RETURN(Sequence cond, EvalItemsLimited(*op.inputs[0], c, 2));
      XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      return EvalItemsLimited(b ? *op.deps[0] : *op.deps[1], c, limit);
    }
    case OpKind::kTreeJoin: {
      if (options_.force_sort || op.ddo != DdoMode::kSkip ||
          (slice_ != nullptr && &op == slice_->range_split)) {
        // Range-split units must apply the slice filter to the full step
        // output; EvalItems handles it.
        return EvalItems(op, c);
      }
      // Sort-free step: each input node's result is already final output,
      // so the step can stop as soon as `limit` items exist. The input is
      // pulled whole — acceptable because the win here is skipping axis
      // application (e.g. //huge-subtree[1]), not input evaluation.
      XQC_ASSIGN_OR_RETURN(Sequence in, EvalItems(*op.inputs[0], c));
      TreeJoinOpts tj{op.ddo, false, options_.use_doc_index, guard_};
      Sequence out;
      for (const Item& it : in) {
        if (out.size() >= limit) {
          stats_.streaming_early_stops++;
          break;
        }
        if (!it.IsNode()) {
          return Status::XQueryError("XPTY0004",
                                     "path step applied to an atomic value");
        }
        XQC_RETURN_IF_ERROR(guard_->CheckSteps(1));
        XQC_RETURN_IF_ERROR(ApplyAxis(it.node(), op.axis, op.ntest,
                                      ctx_->schema(), &out, tj,
                                      &stats_.tree_join));
      }
      stats_.tree_join.ddo_skip_static++;
      return out;
    }
    default:
      return EvalItems(op, c);
  }
}

Result<Sequence> PlanEvaluator::EvalMapToItem(const Op& op, const EvalCtx& c,
                                              size_t limit) {
  XQC_ASSIGN_OR_RETURN(TupleIteratorPtr input, OpenTable(*op.inputs[0], c));
  // Full consumption drives the pipeline in batches; a limited pull stays
  // tuple-at-a-time below (its demand is a handful of tuples, and the
  // oracle's early-exit accounting must be preserved exactly).
  if (limit == kEvalNoLimit && options_.batch_size > 1) {
    Sequence out;
    TupleBatch b;
    while (true) {
      XQC_RETURN_IF_ERROR(
          input->NextBatch(&b, static_cast<size_t>(options_.batch_size)));
      if (b.empty()) return out;
      for (size_t i = 0; i < b.size(); i++) {
        EvalCtx dc = c;
        dc.tuple = &b[i];
        dc.items = nullptr;
        XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.deps[0], dc));
        Extend(&out, std::move(v));
      }
    }
  }
  Sequence out;
  Tuple t;
  while (out.size() < limit) {
    XQC_ASSIGN_OR_RETURN(bool has, input->Next(&t));
    if (!has) return out;
    EvalCtx dc = c;
    dc.tuple = &t;
    dc.items = nullptr;
    XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.deps[0], dc));
    Extend(&out, std::move(v));
  }
  input->Close();
  stats_.streaming_early_stops++;
  return out;
}

Result<Sequence> PlanEvaluator::EvalItems(const Op& op, const EvalCtx& c) {
  XQC_RETURN_IF_ERROR(guard_->Check());
  switch (op.kind) {
    case OpKind::kIn:
      if (c.items != nullptr) return *c.items;
      return Status::Internal("IN evaluated as items with no item context");
    case OpKind::kEmpty:
      return Sequence{};
    case OpKind::kScalar:
      return Sequence{op.literal};
    case OpKind::kVar: {
      // The algebra context: function parameters shadow globals shadow
      // externally bound variables.
      if (c.params != nullptr) {
        auto it = c.params->find(op.name);
        if (it != c.params->end()) return it->second;
      }
      auto git = globals_.find(op.name);
      if (git != globals_.end()) return git->second;
      Sequence v;
      if (ctx_->LookupVariable(op.name, &v)) return v;
      return Status::XQueryError("XPDY0002",
                                 "unbound variable $" + op.name.str());
    }
    case OpKind::kSequence: {
      Sequence out;
      for (const OpPtr& i : op.inputs) {
        XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*i, c));
        Extend(&out, std::move(v));
      }
      return out;
    }
    case OpKind::kElement:
    case OpKind::kAttribute:
    case OpKind::kText:
    case OpKind::kComment:
    case OpKind::kPI:
    case OpKind::kDocumentNode:
      return EvalConstructor(op, c);
    case OpKind::kTreeJoin: {
      XQC_ASSIGN_OR_RETURN(Sequence in, EvalItems(*op.inputs[0], c));
      // One amortized step per context node: a huge axis step cannot run
      // unbounded between slow checks. Credited identically at every
      // batch size (TreeJoin is item-space; batching happens around it).
      XQC_RETURN_IF_ERROR(guard_->CheckSteps(static_cast<int64_t>(in.size())));
      TreeJoinOpts tj{op.ddo, options_.force_sort, options_.use_doc_index,
                      guard_};
      Result<Sequence> joined = TreeJoin(in, op.axis, op.ntest, ctx_->schema(),
                                         tj, &stats_.tree_join);
      if (!joined.ok() || slice_ == nullptr || &op != slice_->range_split) {
        return joined;
      }
      // Range-split partition unit: keep only this unit's pre-order slice
      // of the step output. The slices partition [root.start, root.end], so
      // concatenating units in range order reproduces the full output.
      Sequence sliced;
      for (Item& it : joined.value()) {
        uint64_t s = it.node()->start;
        if (s >= slice_->range_lo && s < slice_->range_hi) {
          sliced.push_back(std::move(it));
        }
      }
      return sliced;
    }
    case OpKind::kTreeProject: {
      // TreeProject[paths]: prune each document/element tree to the nodes
      // the projection paths need (Marian-Siméon style).
      XQC_ASSIGN_OR_RETURN(Sequence in, EvalItems(*op.inputs[0], c));
      Sequence out;
      out.reserve(in.size());
      for (const Item& it : in) {
        if (!it.IsNode()) {
          return Status::XQueryError("XPTY0004",
                                     "TreeProject of an atomic value");
        }
        XQC_ASSIGN_OR_RETURN(NodePtr p, ProjectTree(it.node(), op.paths));
        out.push_back(std::move(p));
      }
      return out;
    }
    case OpKind::kCastable:
    case OpKind::kCast: {
      XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[0], c));
      XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(v));
      bool castable = op.kind == OpKind::kCastable;
      if (atoms.empty()) {
        bool ok_empty = op.stype.occ == Occurrence::kOptional;
        if (castable) return Sequence{AtomicValue::Boolean(ok_empty)};
        if (ok_empty) return Sequence{};
        return Status::XQueryError("XPTY0004", "cast of empty sequence");
      }
      if (atoms.size() > 1) {
        if (castable) return Sequence{AtomicValue::Boolean(false)};
        return Status::XQueryError("XPTY0004", "cast of multi-item sequence");
      }
      Result<AtomicValue> r = CastTo(atoms[0].atomic(), op.stype.test.atomic);
      if (castable) return Sequence{AtomicValue::Boolean(r.ok())};
      if (!r.ok()) return r.status();
      return Sequence{r.take()};
    }
    case OpKind::kValidate: {
      XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[0], c));
      Sequence out;
      for (const Item& it : v) {
        if (!it.IsNode()) {
          return Status::XQueryError("XQTY0030",
                                     "validate of an atomic value");
        }
        if (ctx_->schema() == nullptr) {
          out.push_back(it);
          continue;
        }
        XQC_ASSIGN_OR_RETURN(NodePtr n, ctx_->schema()->Validate(it.node()));
        out.push_back(std::move(n));
      }
      return out;
    }
    case OpKind::kTypeMatches: {
      XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[0], c));
      return Sequence{
          AtomicValue::Boolean(op.stype.Matches(v, ctx_->schema()))};
    }
    case OpKind::kTypeAssert: {
      XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[0], c));
      if (!op.stype.Matches(v, ctx_->schema())) {
        return Status::XQueryError(
            "XPTY0004",
            "TypeAssert failed for type " + op.stype.ToString());
      }
      return v;
    }
    case OpKind::kCall:
      return EvalCall(op, c);
    case OpKind::kCond: {
      // A condition is consumed by EBV only: a 2-item prefix suffices.
      XQC_ASSIGN_OR_RETURN(Sequence cond, EvalItemsLimited(*op.inputs[0], c, 2));
      XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      return EvalItems(b ? *op.deps[0] : *op.deps[1], c);
    }
    case OpKind::kParse: {
      XQC_ASSIGN_OR_RETURN(Sequence uri, EvalItems(*op.inputs[0], c));
      if (uri.size() != 1) {
        return Status::XQueryError("FODC0002", "Parse with non-singleton URI");
      }
      XQC_ASSIGN_OR_RETURN(NodePtr doc,
                           ctx_->ResolveDocument(uri[0].StringValue()));
      return Sequence{std::move(doc)};
    }
    case OpKind::kSerialize: {
      // Serialize(URI, S(i)): writes the serialized value to the URI
      // (a filesystem path) and returns the empty sequence (Table 1).
      XQC_ASSIGN_OR_RETURN(Sequence uri, EvalItems(*op.inputs[0], c));
      XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[1], c));
      if (uri.size() != 1) {
        return Status::XQueryError("FODC0002",
                                   "Serialize with non-singleton URI");
      }
      std::ofstream out(uri[0].StringValue(), std::ios::binary);
      if (!out) {
        return Status::IOError("cannot open for writing: " +
                               uri[0].StringValue());
      }
      out << SerializeSequence(v);
      return Sequence{};
    }
    case OpKind::kFieldAccess: {
      XQC_ASSIGN_OR_RETURN(Tuple t, EvalTuple(*op.inputs[0], c));
      const Sequence* v = t.Get(op.name);
      if (v == nullptr) return Sequence{};
      return *v;
    }
    case OpKind::kMapToItem: {
      if (options_.streaming) return EvalMapToItem(op, c, kEvalNoLimit);
      XQC_ASSIGN_OR_RETURN(Table table, EvalTable(*op.inputs[0], c));
      Sequence out;
      for (const Tuple& t : table) {
        EvalCtx dc = c;
        dc.tuple = &t;
        dc.items = nullptr;
        XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.deps[0], dc));
        Extend(&out, std::move(v));
      }
      return out;
    }
    case OpKind::kMapSome:
    case OpKind::kMapEvery: {
      bool want = op.kind == OpKind::kMapSome;
      if (options_.streaming) {
        // Quantifier short-circuit: stop pulling the binding stream at the
        // first deciding tuple.
        XQC_ASSIGN_OR_RETURN(TupleIteratorPtr input,
                             OpenTable(*op.inputs[0], c));
        Tuple t;
        while (true) {
          XQC_ASSIGN_OR_RETURN(bool has, input->Next(&t));
          if (!has) break;
          XQC_ASSIGN_OR_RETURN(bool b, EvalPredicate(*op.deps[0], t, c));
          if (b == want) {
            input->Close();
            stats_.streaming_early_stops++;
            return Sequence{AtomicValue::Boolean(want)};
          }
        }
        return Sequence{AtomicValue::Boolean(!want)};
      }
      XQC_ASSIGN_OR_RETURN(Table table, EvalTable(*op.inputs[0], c));
      for (const Tuple& t : table) {
        XQC_ASSIGN_OR_RETURN(bool b, EvalPredicate(*op.deps[0], t, c));
        if (b == want) return Sequence{AtomicValue::Boolean(want)};
      }
      return Sequence{AtomicValue::Boolean(!want)};
    }
    default:
      return Status::Internal(std::string("tuple operator ") +
                              OpKindName(op.kind) +
                              " evaluated in item context");
  }
}

Result<Tuple> PlanEvaluator::EvalTuple(const Op& op, const EvalCtx& c) {
  XQC_RETURN_IF_ERROR(guard_->Check());
  switch (op.kind) {
    case OpKind::kIn:
      if (c.tuple != nullptr) return *c.tuple;
      return Tuple();  // top level: the empty tuple
    case OpKind::kTupleConstruct: {
      Tuple t;
      for (size_t i = 0; i < op.fields.size(); i++) {
        XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*op.inputs[i], c));
        t.Set(op.fields[i], std::move(v));
      }
      return t;
    }
    case OpKind::kTupleConcat: {
      XQC_ASSIGN_OR_RETURN(Tuple a, EvalTuple(*op.inputs[0], c));
      XQC_ASSIGN_OR_RETURN(Tuple b, EvalTuple(*op.inputs[1], c));
      return Tuple::Concat(a, b);
    }
    default:
      return Status::Internal(std::string(OpKindName(op.kind)) +
                              " evaluated in tuple context");
  }
}

Result<Table> PlanEvaluator::EvalTable(const Op& op, const EvalCtx& c) {
  XQC_RETURN_IF_ERROR(guard_->Check());
  switch (op.kind) {
    case OpKind::kIn: {
      Table t;
      t.push_back(c.tuple != nullptr ? *c.tuple : Tuple());
      return t;
    }
    case OpKind::kEmptyTuples: {
      Table t;
      t.emplace_back();
      return t;
    }
    case OpKind::kTupleConstruct:
    case OpKind::kTupleConcat: {
      XQC_ASSIGN_OR_RETURN(Tuple t, EvalTuple(op, c));
      Table out;
      out.push_back(std::move(t));
      return out;
    }
    case OpKind::kSelect: {
      XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
      Table out;
      for (Tuple& t : in) {
        XQC_ASSIGN_OR_RETURN(bool b, EvalPredicate(*op.deps[0], t, c));
        if (b) out.push_back(std::move(t));
      }
      return out;
    }
    case OpKind::kProduct: {
      XQC_ASSIGN_OR_RETURN(Table l, EvalTable(*op.inputs[0], c));
      XQC_ASSIGN_OR_RETURN(Table r, EvalTable(*op.inputs[1], c));
      Table out;
      // Clamp the reserve: l*r is adversarially large for cross-product
      // blowups, and the guard must get a chance to trip before one giant
      // up-front allocation can OOM the process.
      out.reserve(std::min(l.size() * r.size(), size_t{1} << 20));
      for (const Tuple& a : l) {
        XQC_RETURN_IF_ERROR(
            guard_->AccountTuples(static_cast<int64_t>(r.size())));
        for (const Tuple& b : r) {
          XQC_RETURN_IF_ERROR(guard_->Check());
          out.push_back(Tuple::Concat(a, b));
        }
      }
      return out;
    }
    case OpKind::kJoin:
      return EvalJoin(op, c, /*outer=*/false);
    case OpKind::kLOuterJoin:
      return EvalJoin(op, c, /*outer=*/true);
    case OpKind::kMap: {
      XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
      Table out;
      out.reserve(in.size());
      for (const Tuple& t : in) {
        EvalCtx dc = c;
        dc.tuple = &t;
        dc.items = nullptr;
        XQC_ASSIGN_OR_RETURN(Tuple nt, EvalTuple(*op.deps[0], dc));
        out.push_back(std::move(nt));
      }
      return out;
    }
    case OpKind::kOMap: {
      XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
      Table out;
      if (in.empty()) {
        Tuple t;
        t.Set(op.name, {AtomicValue::Boolean(true)});
        out.push_back(std::move(t));
        return out;
      }
      out.reserve(in.size());
      for (const Tuple& t : in) {
        Tuple flag;
        flag.Set(op.name, {AtomicValue::Boolean(false)});
        out.push_back(Tuple::Concat(flag, t));
      }
      return out;
    }
    case OpKind::kMapConcat:
    case OpKind::kOMapConcat: {
      XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
      bool outer = op.kind == OpKind::kOMapConcat;
      Table out;
      for (const Tuple& t : in) {
        EvalCtx dc = c;
        dc.tuple = &t;
        dc.items = nullptr;
        XQC_ASSIGN_OR_RETURN(Table sub, EvalTable(*op.deps[0], dc));
        XQC_RETURN_IF_ERROR(
            guard_->AccountTuples(static_cast<int64_t>(sub.size())));
        if (outer && sub.empty()) {
          Tuple flag;
          flag.Set(op.name, {AtomicValue::Boolean(true)});
          out.push_back(Tuple::Concat(flag, t));
          continue;
        }
        for (const Tuple& s : sub) {
          Tuple joined = Tuple::Concat(t, s);
          if (outer) {
            Tuple flag;
            flag.Set(op.name, {AtomicValue::Boolean(false)});
            joined = Tuple::Concat(flag, joined);
          }
          out.push_back(std::move(joined));
        }
      }
      return out;
    }
    case OpKind::kMapIndex:
    case OpKind::kMapIndexStep: {
      XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
      Table out;
      out.reserve(in.size());
      for (size_t i = 0; i < in.size(); i++) {
        Tuple idx;
        idx.Set(op.name,
                {AtomicValue::Integer(static_cast<int64_t>(i) + 1)});
        out.push_back(Tuple::Concat(in[i], idx));
      }
      return out;
    }
    case OpKind::kOrderBy:
      return EvalOrderBy(op, c);
    case OpKind::kGroupBy:
      return EvalGroupBy(op, c);
    case OpKind::kMapFromItem: {
      XQC_ASSIGN_OR_RETURN(Sequence items, EvalItems(*op.inputs[0], c));
      XQC_RETURN_IF_ERROR(
          guard_->AccountTuples(static_cast<int64_t>(items.size())));
      Table out;
      out.reserve(items.size());
      for (const Item& item : items) {
        Sequence one{item};
        EvalCtx dc = c;
        dc.items = &one;
        dc.tuple = nullptr;
        XQC_ASSIGN_OR_RETURN(Tuple t, EvalTuple(*op.deps[0], dc));
        out.push_back(std::move(t));
      }
      stats_.source_tuples += static_cast<int64_t>(out.size());
      return out;
    }
    default:
      return Status::Internal(std::string(OpKindName(op.kind)) +
                              " evaluated in table context");
  }
}

namespace {

/// Flattens a conjunction of op:and calls into its conjunct plans.
void FlattenConjuncts(const Op* pred, std::vector<const Op*>* out) {
  if (pred->kind == OpKind::kCall && pred->name == Symbol("op:and") &&
      pred->inputs.size() == 2) {
    FlattenConjuncts(pred->inputs[0].get(), out);
    FlattenConjuncts(pred->inputs[1].get(), out);
    return;
  }
  // fn:boolean wrappers are transparent for predicate purposes.
  if (pred->kind == OpKind::kCall && pred->name == Symbol("fn:boolean") &&
      pred->inputs.size() == 1) {
    FlattenConjuncts(pred->inputs[0].get(), out);
    return;
  }
  out->push_back(pred);
}

}  // namespace

Result<std::shared_ptr<const Table>> PlanEvaluator::MaterializeJoinRight(
    const Op& op, const EvalCtx& c, bool* cacheable) {
  // The inner (right) side of a correlated subplan's join re-evaluates per
  // outer tuple; when it is independent of IN (and of function parameters)
  // its materialization — and in PlanJoinStrategy, its Figure 6 index — is
  // cached.
  *cacheable = c.params == nullptr && !FreeIn(*op.inputs[1]);
  if (*cacheable) {
    auto it = table_cache_.find(op.inputs[1].get());
    if (it != table_cache_.end()) return it->second;
  }
  XQC_ASSIGN_OR_RETURN(Table t, EvalTable(*op.inputs[1], c));
  auto shared = std::make_shared<const Table>(std::move(t));
  if (*cacheable) table_cache_[op.inputs[1].get()] = shared;
  return shared;
}

Result<JoinStrategy> PlanEvaluator::PlanJoinStrategy(
    const Op& op, const EvalCtx& c, const Tuple& first_left,
    const std::shared_ptr<const Table>& right, bool right_cacheable) {
  JoinStrategy s;
  const Op& pred = *op.deps[0];

  // Multi-predicate joins (Section 6: "this algorithm handles one key
  // predicate in a join, but can be extended to multiple predicates"):
  // pick the first hashable equality conjunct as the index key and apply
  // the remaining conjuncts as a residual filter.
  if (options_.join_impl != JoinImpl::kNestedLoop) {
    std::set<Symbol> lf, rf;
    for (const auto& [f, v] : first_left.entries()) lf.insert(f);
    if (!right->empty()) {
      for (const auto& [f, v] : (*right)[0].entries()) rf.insert(f);
    }
    std::vector<const Op*> conjuncts;
    FlattenConjuncts(&pred, &conjuncts);
    const Op* lkey = nullptr;
    const Op* rkey = nullptr;
    CompOp comp = CompOp::kEq;
    size_t key_idx = conjuncts.size();
    // Prefer an equality conjunct (hash/ordered index); otherwise take an
    // inequality conjunct for the range sort join.
    for (size_t i = 0; i < conjuncts.size(); i++) {
      CompOp cand;
      const Op* lk;
      const Op* rk;
      if (IsIndexableComparison(*conjuncts[i], lf, rf, &lk, &rk, &cand) &&
          cand == CompOp::kEq) {
        key_idx = i;
        lkey = lk;
        rkey = rk;
        comp = cand;
        break;
      }
    }
    if (key_idx == conjuncts.size()) {
      for (size_t i = 0; i < conjuncts.size(); i++) {
        CompOp cand;
        const Op* lk;
        const Op* rk;
        if (IsIndexableComparison(*conjuncts[i], lf, rf, &lk, &rk, &cand) &&
            (cand == CompOp::kLt || cand == CompOp::kLe ||
             cand == CompOp::kGt || cand == CompOp::kGe)) {
          key_idx = i;
          lkey = lk;
          rkey = rk;
          comp = cand;
          break;
        }
      }
    }
    if (key_idx < conjuncts.size()) {
      auto rkey_fn = [this, rkey, &c](const Tuple& t) -> Result<Sequence> {
        EvalCtx kc = c;
        kc.tuple = &t;
        kc.items = nullptr;
        XQC_ASSIGN_OR_RETURN(Sequence v, EvalItems(*rkey, kc));
        return Atomize(v);  // fn:data, Figure 6 line 7
      };
      for (size_t i = 0; i < conjuncts.size(); i++) {
        if (i != key_idx) s.residual.push_back(conjuncts[i]);
      }
      s.left_key = lkey;
      s.comp = comp;

      if (comp == CompOp::kEq) {
        bool ordered = options_.join_impl == JoinImpl::kSort;
        if (ordered) {
          stats_.sort_joins++;
        } else {
          stats_.hash_joins++;
        }
        // Static key-type specialization (Section 6): when both key plans'
        // value classes are known, use single-entry string/double keys
        // instead of the general promotion enumeration.
        bool schema_in_scope = ctx_->schema() != nullptr;
        KeyMode mode = CombineKeyClasses(
            InferJoinKeyClass(*lkey, schema_in_scope),
            InferJoinKeyClass(*rkey, schema_in_scope));
        if (mode == KeyMode::kNoMatch) {
          // Statically incompatible key types: nothing ever matches.
          stats_.specialized_joins++;
          s.kind = JoinStrategy::Kind::kNoMatch;
          return s;
        }
        if (mode != KeyMode::kGeneralKeys) stats_.specialized_joins++;
        s.kind = JoinStrategy::Kind::kEquality;
        if (right_cacheable) {
          auto it = inner_cache_.find(&op);
          if (it != inner_cache_.end() && it->second.table == right) {
            s.eq_index = std::static_pointer_cast<const MaterializedInner>(
                it->second.index);
            stats_.join_index_reuses++;
          }
        }
        if (s.eq_index == nullptr) {
          XQC_ASSIGN_OR_RETURN(
              s.eq_index,
              MaterializeInner(*right, rkey_fn, ordered, mode, guard_));
          if (right_cacheable) {
            inner_cache_[&op] = CachedInner{
                right, std::static_pointer_cast<const void>(s.eq_index)};
          }
        }
        return s;
      }

      // Inequality: the range variant of the sort join (Section 6's "the
      // same approach can be used to implement a sort join").
      stats_.range_joins++;
      s.kind = JoinStrategy::Kind::kInequality;
      if (right_cacheable) {
        auto it = inner_cache_.find(&op);
        if (it != inner_cache_.end() && it->second.table == right) {
          s.range_index =
              std::static_pointer_cast<const MaterializedRangeInner>(
                  it->second.index);
          stats_.join_index_reuses++;
        }
      }
      if (s.range_index == nullptr) {
        XQC_ASSIGN_OR_RETURN(s.range_index,
                             MaterializeRangeInner(*right, rkey_fn, guard_));
        if (right_cacheable) {
          inner_cache_[&op] = CachedInner{
              right, std::static_pointer_cast<const void>(s.range_index)};
        }
      }
      return s;
    }
  }

  stats_.nested_loop_joins++;
  s.kind = JoinStrategy::Kind::kNestedLoop;
  return s;
}

Status PlanEvaluator::ProbeJoinTuple(const Op& op, const JoinStrategy& s,
                                     const EvalCtx& c, const Tuple& left,
                                     const Table& right, bool outer,
                                     Table* out) {
  switch (s.kind) {
    case JoinStrategy::Kind::kNoMatch:
      if (outer) out->push_back(OuterNullRow(op.name, left));
      return Status::OK();
    case JoinStrategy::Kind::kNestedLoop: {
      const Op& pred = *op.deps[0];
      PredFn pred_fn = [this, &pred, &c](const Tuple& t) {
        return EvalPredicate(pred, t, c);
      };
      return NestedLoopProbe(left, right, pred_fn, outer, op.name, out);
    }
    default:
      break;
  }
  // Indexed probes: evaluate and atomize the left key (Figure 6 line 7).
  EvalCtx kc = c;
  kc.tuple = &left;
  kc.items = nullptr;
  XQC_ASSIGN_OR_RETURN(Sequence kv, EvalItems(*s.left_key, kc));
  XQC_ASSIGN_OR_RETURN(Sequence keys, Atomize(kv));
  PredFn residual = [this, &s, &c](const Tuple& t) -> Result<bool> {
    for (const Op* conj : s.residual) {
      XQC_ASSIGN_OR_RETURN(bool b, EvalPredicate(*conj, t, c));
      if (!b) return false;
    }
    return true;
  };
  const PredFn* residual_ptr = s.residual.empty() ? nullptr : &residual;
  if (s.kind == JoinStrategy::Kind::kEquality) {
    return EqualityProbe(left, keys, right, *s.eq_index, outer, op.name,
                         residual_ptr, out);
  }
  return InequalityProbe(left, keys, right, *s.range_index, s.comp, outer,
                         op.name, residual_ptr, out);
}

Result<Table> PlanEvaluator::EvalJoin(const Op& op, const EvalCtx& c,
                                      bool outer) {
  XQC_ASSIGN_OR_RETURN(Table left, EvalTable(*op.inputs[0], c));
  bool cacheable = false;
  XQC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> right,
                       MaterializeJoinRight(op, c, &cacheable));
  XQC_ASSIGN_OR_RETURN(
      JoinStrategy strategy,
      PlanJoinStrategy(op, c, left.empty() ? Tuple() : left[0], right,
                       cacheable));
  Table out;
  for (const Tuple& l : left) {
    size_t before = out.size();
    XQC_RETURN_IF_ERROR(
        ProbeJoinTuple(op, strategy, c, l, *right, outer, &out));
    XQC_RETURN_IF_ERROR(
        guard_->AccountTuples(static_cast<int64_t>(out.size() - before)));
  }
  return out;
}

Result<Table> PlanEvaluator::EvalGroupBy(const Op& op, const EvalCtx& c) {
  stats_.group_bys++;
  XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
  const Op& post = *op.deps[0];  // applied to each partition's items
  const Op& pre = *op.deps[1];   // applied to each non-null tuple

  // Evaluate null flags and pre-grouping items per tuple.
  struct Row {
    const Tuple* tuple;
    std::vector<int64_t> key;
    Sequence items;
    bool is_null;
  };
  std::vector<Row> rows;
  rows.reserve(in.size());
  for (const Tuple& t : in) {
    Row row{&t, {}, {}, false};
    for (Symbol nf : op.fields2) {
      const Sequence* flag = t.Get(nf);
      if (flag != nullptr && !flag->empty() && (*flag)[0].IsAtomic() &&
          (*flag)[0].atomic().type() == AtomicType::kBoolean &&
          (*flag)[0].atomic().AsBool()) {
        row.is_null = true;
      }
    }
    for (Symbol f : op.fields) {
      const Sequence* v = t.Get(f);
      if (v == nullptr || v->size() != 1 || !(*v)[0].IsAtomic() ||
          (*v)[0].atomic().type() != AtomicType::kInteger) {
        return Status::Internal("GroupBy index field " + f.str() +
                                " is not a singleton integer");
      }
      row.key.push_back((*v)[0].atomic().AsInt());
    }
    if (!row.is_null) {
      EvalCtx pc = c;
      pc.tuple = &t;
      pc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(row.items, EvalItems(pre, pc));
    }
    rows.push_back(std::move(row));
  }

  // Partitions are keyed by the index fields in stable ascending order.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.key < b.key; });

  Table out;
  size_t i = 0;
  while (i < rows.size()) {
    size_t j = i;
    Sequence partition_items;
    while (j < rows.size() && rows[j].key == rows[i].key) {
      Extend(&partition_items, std::move(rows[j].items));
      j++;
    }
    EvalCtx pc = c;
    pc.items = &partition_items;
    pc.tuple = nullptr;
    XQC_ASSIGN_OR_RETURN(Sequence agg, EvalItems(post, pc));
    Tuple result = *rows[i].tuple;
    result.Set(op.name, std::move(agg));
    out.push_back(std::move(result));
    i = j;
  }
  return out;
}

Result<Table> PlanEvaluator::EvalOrderBy(const Op& op, const EvalCtx& c) {
  XQC_ASSIGN_OR_RETURN(Table in, EvalTable(*op.inputs[0], c));
  struct Keyed {
    Tuple t;
    std::vector<Sequence> keys;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(in.size());
  for (Tuple& t : in) {
    Keyed k{std::move(t), {}};
    for (const OrderSpecOp& spec : op.specs) {
      EvalCtx kc = c;
      kc.tuple = &k.t;
      kc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(Sequence kv, EvalItems(*spec.key, kc));
      XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(kv));
      if (atoms.size() > 1) {
        return Status::XQueryError("XPTY0004",
                                   "order by key with more than one item");
      }
      k.keys.push_back(std::move(atoms));
    }
    keyed.push_back(std::move(k));
  }
  Status sort_error = Status::OK();
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const Keyed& a, const Keyed& b) {
                     if (!sort_error.ok()) return false;
                     for (size_t i = 0; i < op.specs.size(); i++) {
                       Result<int> cmp = CompareOrderKeys(
                           a.keys[i], b.keys[i], op.specs[i].empty_greatest);
                       if (!cmp.ok()) {
                         sort_error = cmp.status();
                         return false;
                       }
                       int v = cmp.value();
                       if (op.specs[i].descending) v = -v;
                       if (v != 0) return v < 0;
                     }
                     return false;
                   });
  XQC_RETURN_IF_ERROR(sort_error);
  Table out;
  out.reserve(keyed.size());
  for (Keyed& k : keyed) out.push_back(std::move(k.t));
  return out;
}

namespace {

/// A single atomic numeric value (no untyped casting — callers that want
/// full F&O coercion must not rely on this).
bool SingletonNumeric(const Sequence& v, double* out) {
  if (v.size() != 1 || !v[0].IsAtomic() || !v[0].atomic().is_numeric()) {
    return false;
  }
  *out = v[0].atomic().AsDouble();
  return true;
}

}  // namespace

Result<Sequence> PlanEvaluator::EvalCall(const Op& op, const EvalCtx& c) {
  if (slice_ != nullptr && &op == slice_->source) {
    // Partition unit of a parallelized plan: the collection scan yields
    // just this unit's member documents (runtime/parallel.cc).
    return slice_->docs;
  }
  auto it = query_->functions.find(op.name);
  std::vector<Sequence> args(op.inputs.size());
  std::vector<bool> have(op.inputs.size(), false);
  // Early-terminating built-ins: in streaming mode their first argument
  // only needs a bounded prefix (argument evaluation order is
  // implementation-defined, so fn:subsequence's bounds evaluate first).
  size_t first_limit = kEvalNoLimit;
  if (options_.streaming && it == query_->functions.end() &&
      !op.inputs.empty()) {
    const std::string& n = op.name.str();
    if (n == "fn:exists" || n == "fn:empty") {
      first_limit = 1;
    } else if (n == "fn:boolean" || n == "fn:not") {
      first_limit = 2;  // EBV is decidable from a 2-item prefix
    } else if (n == "fn:subsequence" && op.inputs.size() == 3) {
      for (size_t i = 1; i < op.inputs.size(); i++) {
        XQC_ASSIGN_OR_RETURN(args[i], EvalItems(*op.inputs[i], c));
        have[i] = true;
      }
      double dstart, dlen;
      if (SingletonNumeric(args[1], &dstart) &&
          SingletonNumeric(args[2], &dlen)) {
        // Positions >= round(start)+round(len) are excluded, so only the
        // prefix before that bound is needed. NaN bounds select nothing.
        double to = XQueryRound(dstart) + XQueryRound(dlen);
        if (std::isnan(to) || to < 1) {
          first_limit = 0;
        } else if (to <= 1e15) {
          first_limit = static_cast<size_t>(to) - 1;
        }
      }
    }
  }
  for (size_t i = 0; i < op.inputs.size(); i++) {
    if (have[i]) continue;
    XQC_ASSIGN_OR_RETURN(
        args[i], EvalItemsLimited(*op.inputs[i], c,
                                  i == 0 ? first_limit : kEvalNoLimit));
  }
  if (it != query_->functions.end()) {
    const CompiledFunction& f = it->second;
    if (args.size() != f.params.size()) {
      return Status::XQueryError(
          "XPST0017", "wrong number of arguments for " + f.name.str());
    }
    if (++depth_ > kMaxRecursionDepth) {
      depth_--;
      return Status::ResourceExhausted(kGuardRecursionCode,
                                       "recursion depth exceeded");
    }
    std::unordered_map<Symbol, Sequence> params;
    for (size_t i = 0; i < args.size(); i++) {
      if (f.param_types[i] &&
          !f.param_types[i]->Matches(args[i], ctx_->schema())) {
        depth_--;
        return Status::XQueryError(
            "XPTY0004", "argument type mismatch calling " + f.name.str());
      }
      params[f.params[i]] = std::move(args[i]);
    }
    EvalCtx fc;
    fc.params = &params;
    Result<Sequence> r = EvalItems(*f.plan, fc);
    depth_--;
    if (r.ok() && f.return_type &&
        !f.return_type->Matches(r.value(), ctx_->schema())) {
      return Status::XQueryError(
          "XPTY0004", "result type mismatch from " + f.name.str());
    }
    return r;
  }
  return CallBuiltin(op.name, args, ctx_);
}

Result<Sequence> PlanEvaluator::EvalConstructor(const Op& op,
                                                const EvalCtx& c) {
  XQC_ASSIGN_OR_RETURN(Sequence content, EvalItems(*op.inputs[0], c));
  Symbol name = op.name;
  if (op.inputs.size() > 1) {  // computed constructor name
    XQC_ASSIGN_OR_RETURN(Sequence nv, EvalItems(*op.inputs[1], c));
    if (nv.size() != 1) {
      return Status::XQueryError("XPTY0004",
                                 "constructor name is not a QName");
    }
    name = Symbol(nv[0].StringValue());
  }
  switch (op.kind) {
    case OpKind::kElement: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructElement(name, content, guard_));
      return Sequence{std::move(n)};
    }
    case OpKind::kAttribute: {
      XQC_ASSIGN_OR_RETURN(NodePtr n,
                           ConstructAttribute(name, content, guard_));
      return Sequence{std::move(n)};
    }
    case OpKind::kText: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructText(content, guard_));
      if (n == nullptr) return Sequence{};
      return Sequence{std::move(n)};
    }
    case OpKind::kComment: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructComment(content, guard_));
      return Sequence{std::move(n)};
    }
    case OpKind::kPI: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructPI(name, content, guard_));
      return Sequence{std::move(n)};
    }
    case OpKind::kDocumentNode: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructDocument(content, guard_));
      return Sequence{std::move(n)};
    }
    default:
      return Status::Internal("not a constructor operator");
  }
}

}  // namespace xqc
