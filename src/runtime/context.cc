#include "src/runtime/context.h"

#include "src/xml/xml_parser.h"

namespace xqc {

Result<NodePtr> DynamicContext::ResolveDocument(const std::string& uri) {
  auto it = documents_.find(uri);
  if (it != documents_.end()) return it->second;
  auto cached = exec_doc_cache_.find(uri);
  if (cached != exec_doc_cache_.end()) return cached->second;
  XmlParseOptions options;
  options.guard = guard_;
  XQC_ASSIGN_OR_RETURN(NodePtr doc, ParseXmlFile(uri, options));
  doc_parses_++;
  exec_doc_cache_[uri] = doc;
  return doc;
}

Result<bool> DynamicContext::DocumentAvailable(const std::string& uri) {
  Result<NodePtr> doc = ResolveDocument(uri);
  if (doc.ok()) return true;
  // A guard trip (deadline/cancellation mid-parse) is a query failure, not
  // "document unavailable".
  if (doc.status().kind() == StatusKind::kResourceExhausted) {
    return doc.status();
  }
  return false;
}

}  // namespace xqc
