#include "src/runtime/context.h"

#include "src/xml/xml_parser.h"

namespace xqc {

Result<NodePtr> DynamicContext::ResolveDocument(const std::string& raw_uri) {
  const std::string uri = NormalizeDocUri(raw_uri);
  auto it = documents_.find(uri);
  if (it != documents_.end()) return it->second;
  auto cached = exec_doc_cache_.find(uri);
  if (cached != exec_doc_cache_.end()) return cached->second;

  DocumentStore* store = document_store();
  if (store != nullptr) {
    DocumentStore::LoadOptions load;
    load.guard = guard_;
    load.stats = &doc_store_stats_;
    load.use_snapshots = snapshots_enabled_;
    bool performed_parse = false;
    load.performed_parse = &performed_parse;
    XQC_ASSIGN_OR_RETURN(NodePtr doc, store->Load(uri, load));
    if (performed_parse) doc_parses_++;
    exec_doc_cache_[uri] = doc;
    return doc;
  }

  XmlParseOptions options;
  options.guard = guard_;
  XQC_ASSIGN_OR_RETURN(NodePtr doc, ParseXmlFile(uri, options));
  doc_parses_++;
  exec_doc_cache_[uri] = doc;
  return doc;
}

Result<bool> DynamicContext::DocumentAvailable(const std::string& uri) {
  Result<NodePtr> doc = ResolveDocument(uri);
  if (doc.ok()) return true;
  // A guard trip (deadline/cancellation mid-parse) is a query failure, not
  // "document unavailable". Store-layer verdicts — quarantine replays,
  // negative-cache hits, retry exhaustion — all mean the document cannot be
  // retrieved right now, which per F&O is `false`.
  if (doc.status().kind() == StatusKind::kResourceExhausted) {
    return doc.status();
  }
  return false;
}

}  // namespace xqc
