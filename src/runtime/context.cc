#include "src/runtime/context.h"

#include "src/xml/xml_parser.h"

namespace xqc {

Result<NodePtr> DynamicContext::ResolveDocument(const std::string& uri) {
  auto it = documents_.find(uri);
  if (it != documents_.end()) return it->second;
  XmlParseOptions options;
  options.guard = guard_;
  XQC_ASSIGN_OR_RETURN(NodePtr doc, ParseXmlFile(uri, options));
  documents_[uri] = doc;
  return doc;
}

}  // namespace xqc
