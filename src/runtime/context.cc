#include "src/runtime/context.h"

#include "src/xml/xml_parser.h"

namespace xqc {

Result<NodePtr> DynamicContext::ResolveDocument(const std::string& raw_uri) {
  const std::string uri = NormalizeDocUri(raw_uri);
  auto it = documents_.find(uri);
  if (it != documents_.end()) return it->second;
  auto cached = exec_doc_cache_.find(uri);
  if (cached != exec_doc_cache_.end()) return cached->second;

  DocumentStore* store = document_store();
  if (store != nullptr) {
    DocumentStore::LoadOptions load;
    load.guard = guard_;
    load.stats = &doc_store_stats_;
    load.use_snapshots = snapshots_enabled_;
    bool performed_parse = false;
    load.performed_parse = &performed_parse;
    XQC_ASSIGN_OR_RETURN(NodePtr doc, store->Load(uri, load));
    if (performed_parse) doc_parses_++;
    exec_doc_cache_[uri] = doc;
    return doc;
  }

  XmlParseOptions options;
  options.guard = guard_;
  XQC_ASSIGN_OR_RETURN(NodePtr doc, ParseXmlFile(uri, options));
  doc_parses_++;
  exec_doc_cache_[uri] = doc;
  return doc;
}

namespace {

/// Member failures a lenient collection scan may skip: the document itself
/// is bad (malformed now, or quarantined from an earlier parse) or vanished
/// between enumeration and load. Everything else — guard trips, retry
/// exhaustion (XQC0008), an open circuit breaker (XQC0011) — is about the
/// query's budget or the I/O tier's health, and always propagates.
bool SkippableMemberFailure(const Status& st) {
  if (st.kind() == StatusKind::kResourceExhausted) return false;
  if (st.code() == kStoreQuarantinedCode) return true;
  if (st.kind() == StatusKind::kParseError) return true;
  if (st.kind() == StatusKind::kIOError && st.code() == "FODC0002") {
    return true;
  }
  return false;
}

Status MemberError(const std::string& collection, const std::string& member,
                   const Status& st) {
  return Status::WithCode(st.kind(), st.code(),
                          "collection '" + collection + "' member '" + member +
                              "': " + st.message());
}

}  // namespace

Result<std::shared_ptr<const ResolvedCollection>>
DynamicContext::ResolveCollection(const std::string& raw_uri) {
  if (raw_uri.empty()) {
    return Status::IOError("fn:collection: no default collection is defined");
  }
  const std::string uri = NormalizeDocUri(raw_uri);
  auto cached = exec_collection_cache_.find(uri);
  if (cached != exec_collection_cache_.end()) return cached->second;

  DocumentStore* store = document_store();
  std::vector<std::string> members;
  if (store != nullptr) {
    XQC_ASSIGN_OR_RETURN(members, store->ListCollection(uri, &doc_store_stats_));
  } else {
    XQC_ASSIGN_OR_RETURN(members, ListCollectionMembers(uri));
    doc_store_stats_.collections_resolved++;
  }

  auto col = std::make_shared<ResolvedCollection>();
  col->uris.reserve(members.size());
  col->docs.reserve(members.size());
  // Load members in ordinal (sorted-URI) order, enforcing that each tree's
  // interval block sorts above its predecessor's — see the header comment.
  uint64_t prev_max = 0;
  for (const std::string& m : members) {
    Result<NodePtr> doc = [&]() -> Result<NodePtr> {
      if (store == nullptr) {
        // Store-disabled ablation: every member is a fresh per-execution
        // parse, so blocks are naturally ordinal-increasing.
        XmlParseOptions popts;
        popts.guard = guard_;
        Result<NodePtr> r = ParseXmlFile(m, popts);
        if (r.ok()) doc_parses_++;
        return r;
      }
      DocumentStore::LoadOptions load;
      load.guard = guard_;
      load.stats = &doc_store_stats_;
      load.use_snapshots = snapshots_enabled_;
      bool performed_parse = false;
      load.performed_parse = &performed_parse;
      Result<NodePtr> r = store->Load(m, load);
      if (r.ok() && r.value()->start <= prev_max) {
        // The cached tree's block predates an earlier member's (reload
        // order was scrambled by evictions): force a fresh load, whose new
        // block is drawn after everything already allocated.
        doc_store_stats_.collection_reorders++;
        load.force_fresh = true;
        r = store->Load(m, load);
      }
      if (r.ok() && r.value()->start <= prev_max) {
        // Still out of order: a concurrent loader raced our force-fresh
        // slot (singleflight joined an older in-flight parse). A private
        // uncached parse is guaranteed a fresh, higher block.
        XmlParseOptions popts;
        popts.guard = guard_;
        r = ParseXmlFile(m, popts);
        if (r.ok()) doc_parses_++;
        performed_parse = false;
      }
      if (performed_parse) doc_parses_++;
      return r;
    }();
    if (!doc.ok()) {
      if (!strict_collections_ && SkippableMemberFailure(doc.status())) {
        col->skipped++;
        doc_store_stats_.collection_members_skipped++;
        continue;
      }
      return MemberError(uri, m, doc.status());
    }
    prev_max = doc.value()->start;
    // Pin the member for the rest of the execution (fn:doc on the same URI
    // must observe the same tree the collection serves).
    exec_doc_cache_[m] = doc.value();
    col->uris.push_back(m);
    col->docs.push_back(doc.take());
  }
  doc_store_stats_.collection_members +=
      static_cast<int64_t>(col->docs.size());
  exec_collection_cache_[uri] = col;
  return std::shared_ptr<const ResolvedCollection>(col);
}

Result<std::vector<std::string>> DynamicContext::CollectionUris(
    const std::string& raw_uri) {
  if (raw_uri.empty()) {
    return Status::IOError(
        "fn:uri-collection: no default collection is defined");
  }
  const std::string uri = NormalizeDocUri(raw_uri);
  DocumentStore* store = document_store();
  if (store != nullptr) return store->ListCollection(uri, &doc_store_stats_);
  Result<std::vector<std::string>> r = ListCollectionMembers(uri);
  if (r.ok()) doc_store_stats_.collections_resolved++;
  return r;
}

Result<bool> DynamicContext::DocumentAvailable(const std::string& uri) {
  Result<NodePtr> doc = ResolveDocument(uri);
  if (doc.ok()) return true;
  // A guard trip (deadline/cancellation mid-parse) is a query failure, not
  // "document unavailable". Store-layer verdicts — quarantine replays,
  // negative-cache hits, retry exhaustion — all mean the document cannot be
  // retrieved right now, which per F&O is `false`.
  if (doc.status().kind() == StatusKind::kResourceExhausted) {
    return doc.status();
  }
  return false;
}

}  // namespace xqc
