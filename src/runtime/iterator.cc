// Iterator (open/next/close) implementations for the tuple algebra and
// PlanEvaluator::OpenTable, the physical-plan factory for streaming mode.
//
// Streaming operators: Select (with a positional early-stop bound),
// Product (build right, stream left), Map, OMap, MapConcat/OMapConcat,
// MapIndex/MapIndexStep, MapFromItem, and Join/LOuterJoin (Figure 6
// build side materialized once, probe side streamed). GroupBy and
// OrderBy need their whole input before emitting anything, so they —
// like all non-table operators — materialize behind a TableIter.
#include "src/runtime/iterator.h"

#include <string_view>
#include <utility>

#include "src/runtime/eval.h"

namespace xqc {

// Default batched pull: loops Next() until the batch is full or the
// stream ends, latching end-of-stream so further calls return the empty
// batch (Next() after false is undefined). Guard accounting is whatever
// Next() does — exactly the oracle's, since this IS the oracle loop.
Status TupleIterator::NextBatch(TupleBatch* out, size_t max) {
  out->clear();
  if (default_batch_eos_) return Status::OK();
  Tuple t;
  while (out->size() < max) {
    XQC_ASSIGN_OR_RETURN(bool has, Next(&t));
    if (!has) {
      default_batch_eos_ = true;
      break;
    }
    out->push(std::move(t));
  }
  return Status::OK();
}

namespace {

/// Materialized fallback: yields the tuples of a precomputed table.
class TableIter : public TupleIterator {
 public:
  explicit TableIter(Table table) : table_(std::move(table)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    if (idx_ >= table_.size()) return false;
    *out = std::move(table_[idx_++]);
    return true;
  }
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    while (out->size() < max && idx_ < table_.size()) {
      out->push(std::move(table_[idx_++]));
    }
    return Status::OK();
  }
  void Close() override {
    table_.clear();
    idx_ = 0;
  }

 private:
  Table table_;
  size_t idx_ = 0;
};

/// The largest input position that can still satisfy a positional
/// predicate over `pos_field`, or -1 when the predicate has no such
/// bound. Recognizes the normalized [N] / [position() <= N] shapes:
/// op:(general-)?{eq,le,lt}(#pos_field(In), Scalar N) and the mirrored
/// Scalar-first {eq,ge,gt} forms. A wrong -1 only costs the early stop;
/// the Select predicate itself still filters every tuple.
int64_t PositionalBound(const Op& pred, Symbol pos_field) {
  if (pred.kind != OpKind::kCall || pred.inputs.size() != 2) return -1;
  std::string_view n(pred.name.str());
  if (n.rfind("op:general-", 0) == 0) {
    n.remove_prefix(11);
  } else if (n.rfind("op:", 0) == 0) {
    n.remove_prefix(3);
  } else {
    return -1;
  }
  auto is_pos = [&](const Op& o) {
    return o.kind == OpKind::kFieldAccess && o.name == pos_field &&
           o.inputs.size() == 1 && o.inputs[0]->kind == OpKind::kIn;
  };
  auto int_lit = [](const Op& o, int64_t* v) {
    if (o.kind != OpKind::kScalar ||
        o.literal.type() != AtomicType::kInteger) {
      return false;
    }
    *v = o.literal.AsInt();
    return true;
  };
  int64_t lit = 0;
  if (is_pos(*pred.inputs[0]) && int_lit(*pred.inputs[1], &lit)) {
    // pos OP lit
  } else if (is_pos(*pred.inputs[1]) && int_lit(*pred.inputs[0], &lit)) {
    // lit OP pos  =>  pos MIRROR(OP) lit
    if (n == "ge") {
      n = "le";
    } else if (n == "gt") {
      n = "lt";
    } else if (n != "eq") {
      return -1;
    }
  } else {
    return -1;
  }
  int64_t bound;
  if (n == "eq" || n == "le") {
    bound = lit;
  } else if (n == "lt") {
    bound = lit - 1;
  } else {
    return -1;
  }
  return bound < 0 ? 0 : bound;
}

/// Select{pred}: filters the child stream. When the child is a
/// MapIndex[q] and the predicate bounds q above, stops pulling once no
/// later position can match — this is the [1] / [position() <= N] early
/// exit.
class SelectIter : public TupleIterator {
 public:
  SelectIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c,
             TupleIteratorPtr child, int64_t bound)
      : ev_(ev), op_(op), c_(c), child_(std::move(child)), bound_(bound) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    if (stopped_) return false;
    Tuple t;
    while (true) {
      XQC_RETURN_IF_ERROR(ev_->guard()->Check());
      if (bound_ >= 0 && pulled_ >= bound_) {
        stopped_ = true;
        ev_->mutable_stats()->streaming_early_stops++;
        child_->Close();
        return false;
      }
      XQC_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) return false;
      pulled_++;
      XQC_ASSIGN_OR_RETURN(bool b, ev_->EvalPredicate(*op_->deps[0], t, c_));
      if (b) {
        *out = std::move(t);
        return true;
      }
    }
  }
  // Batched filter. Guard parity with Next(): the oracle checks once per
  // loop iteration — one per input tuple pulled, plus one for the
  // iteration that discovers end-of-stream or the positional stop. The
  // positional bound clamps the demand passed down, so a [N] head over a
  // batched pipeline pulls exactly N input tuples, like the oracle.
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (stopped_ || eos_) return Status::OK();
    while (out->size() < max) {
      size_t want = max - out->size();
      if (bound_ >= 0) {
        int64_t left = bound_ - pulled_;
        if (left <= 0) {
          XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
          stopped_ = true;
          ev_->mutable_stats()->streaming_early_stops++;
          child_->Close();
          break;
        }
        if (static_cast<int64_t>(want) > left) {
          want = static_cast<size_t>(left);
        }
      }
      XQC_RETURN_IF_ERROR(child_->NextBatch(&in_, want));
      if (in_.empty()) {
        XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
        eos_ = true;
        break;
      }
      XQC_RETURN_IF_ERROR(
          ev_->guard()->CheckSteps(static_cast<int64_t>(in_.size())));
      pulled_ += static_cast<int64_t>(in_.size());
      for (size_t i = 0; i < in_.size(); i++) {
        XQC_ASSIGN_OR_RETURN(bool b,
                             ev_->EvalPredicate(*op_->deps[0], in_[i], c_));
        if (b) out->push(std::move(in_[i]));
      }
    }
    return Status::OK();
  }
  void Close() override { child_->Close(); }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  TupleIteratorPtr child_;
  int64_t bound_;  // input pulls that can still match; -1 = unbounded
  int64_t pulled_ = 0;
  bool stopped_ = false;
  bool eos_ = false;
  TupleBatch in_;
};

/// Product: materializes the right side once, streams the left.
// The left side is materialized (it is almost always the singleton IN or a
// small outer binding) so the big right side — the generator in compiled
// quantifier/FLWOR shapes like Product(IN, MapFromItem{...}) — can stream.
// Output stays left-major: the right stream is replayed from a buffer for
// every left tuple after the first, and the buffer is skipped entirely when
// the left is a singleton.
class ProductIter : public TupleIterator {
 public:
  ProductIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c)
      : ev_(ev), op_(op), c_(c) {}
  Status Open() override {
    XQC_ASSIGN_OR_RETURN(left_, ev_->EvalTable(*op_->inputs[0], c_));
    if (left_.empty()) return Status::OK();
    XQC_ASSIGN_OR_RETURN(right_, ev_->OpenTable(*op_->inputs[1], c_));
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (left_.empty()) return false;
    while (true) {
      XQC_RETURN_IF_ERROR(ev_->guard()->Check());
      if (lidx_ == 0 && !right_done_) {
        Tuple r;
        XQC_ASSIGN_OR_RETURN(bool has, right_->Next(&r));
        if (has) {
          *out = Tuple::Concat(left_[0], r);
          if (left_.size() > 1) {
            XQC_RETURN_IF_ERROR(ev_->guard()->AccountTuples(1));
            replay_.push_back(std::move(r));
          }
          return true;
        }
        right_done_ = true;
        lidx_ = 1;
        ridx_ = 0;
        continue;
      }
      if (lidx_ >= left_.size()) return false;
      if (ridx_ < replay_.size()) {
        *out = Tuple::Concat(left_[lidx_], replay_[ridx_++]);
        return true;
      }
      lidx_++;
      ridx_ = 0;
    }
  }
  // Batched product. The dominant shape is a singleton left (the IN
  // tuple of a compiled FLWOR/quantifier): the right stream passes
  // through in batches with one Concat per tuple. Guard parity with
  // Next(): one check per emitted tuple, plus two for the end (the
  // right-exhausted transition iteration and the final return). The
  // multi-left replay shape falls back to the oracle loop.
  Status NextBatch(TupleBatch* out, size_t max) override {
    if (left_.size() != 1) return TupleIterator::NextBatch(out, max);
    out->clear();
    if (eos_) return Status::OK();
    while (out->size() < max) {
      XQC_RETURN_IF_ERROR(right_->NextBatch(&in_, max - out->size()));
      if (in_.empty()) {
        XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(2));
        eos_ = true;
        break;
      }
      XQC_RETURN_IF_ERROR(
          ev_->guard()->CheckSteps(static_cast<int64_t>(in_.size())));
      for (size_t i = 0; i < in_.size(); i++) {
        out->push(Tuple::Concat(left_[0], in_[i]));
      }
    }
    return Status::OK();
  }
  void Close() override {
    if (right_ != nullptr) right_->Close();
  }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  Table left_;
  TupleIteratorPtr right_;
  Table replay_;  // right tuples, kept only if they must repeat
  bool right_done_ = false;
  bool eos_ = false;
  size_t lidx_ = 0;
  size_t ridx_ = 0;
  TupleBatch in_;
};

/// Map{f}: one output tuple per input tuple.
class MapIter : public TupleIterator {
 public:
  MapIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c,
          TupleIteratorPtr child)
      : ev_(ev), op_(op), c_(c), child_(std::move(child)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    Tuple t;
    XQC_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) return false;
    EvalCtx dc = c_;
    dc.tuple = &t;
    dc.items = nullptr;
    XQC_ASSIGN_OR_RETURN(*out, ev_->EvalTuple(*op_->deps[0], dc));
    return true;
  }
  // Batched 1:1 map; a short child batch passes through short. MapIter
  // itself checks nothing (EvalTuple checks on entry), same as Next().
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (eos_) return Status::OK();
    XQC_RETURN_IF_ERROR(child_->NextBatch(&in_, max));
    if (in_.empty()) {
      eos_ = true;
      return Status::OK();
    }
    for (size_t i = 0; i < in_.size(); i++) {
      EvalCtx dc = c_;
      dc.tuple = &in_[i];
      dc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(Tuple r, ev_->EvalTuple(*op_->deps[0], dc));
      out->push(std::move(r));
    }
    return Status::OK();
  }
  void Close() override { child_->Close(); }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  TupleIteratorPtr child_;
  bool eos_ = false;
  TupleBatch in_;
};

/// OMap[q]: prepends [q:false] to each tuple; an empty input becomes the
/// single tuple [q:true].
class OMapIter : public TupleIterator {
 public:
  OMapIter(const Op* op, TupleIteratorPtr child)
      : op_(op), child_(std::move(child)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    if (done_) return false;
    Tuple t;
    XQC_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) {
      done_ = true;
      if (first_) {
        Tuple flag;
        flag.Set(op_->name, {AtomicValue::Boolean(true)});
        *out = std::move(flag);
        return true;
      }
      return false;
    }
    first_ = false;
    Tuple flag;
    flag.Set(op_->name, {AtomicValue::Boolean(false)});
    *out = Tuple::Concat(flag, t);
    return true;
  }
  void Close() override { child_->Close(); }

 private:
  const Op* op_;
  TupleIteratorPtr child_;
  bool first_ = true;
  bool done_ = false;
};

/// MapConcat{f} / OMapConcat[q]{f}: per outer tuple, streams the
/// dependent table f(t) and concatenates. The outer variant prepends the
/// [q:bool] null flag and emits [q:true]++t when f(t) is empty.
class MapConcatIter : public TupleIterator {
 public:
  MapConcatIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c,
                TupleIteratorPtr child, bool outer)
      : ev_(ev), op_(op), c_(c), child_(std::move(child)), outer_(outer) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    while (true) {
      XQC_RETURN_IF_ERROR(ev_->guard()->Check());
      if (inner_ != nullptr) {
        Tuple s;
        XQC_ASSIGN_OR_RETURN(bool has, inner_->Next(&s));
        if (has) {
          inner_matched_ = true;
          Tuple joined = Tuple::Concat(current_, s);
          if (outer_) {
            Tuple flag;
            flag.Set(op_->name, {AtomicValue::Boolean(false)});
            joined = Tuple::Concat(flag, joined);
          }
          *out = std::move(joined);
          return true;
        }
        bool unmatched = outer_ && !inner_matched_;
        inner_.reset();  // before current_ is overwritten below
        if (unmatched) {
          Tuple flag;
          flag.Set(op_->name, {AtomicValue::Boolean(true)});
          *out = Tuple::Concat(flag, current_);
          return true;
        }
      }
      XQC_ASSIGN_OR_RETURN(bool has, child_->Next(&current_));
      if (!has) return false;
      // The dependent iterator sees current_ (stable member storage) as
      // its IN tuple for its whole lifetime.
      EvalCtx dc = c_;
      dc.tuple = &current_;
      dc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(inner_, ev_->OpenTable(*op_->deps[0], dc));
      inner_matched_ = false;
    }
  }
  // Batched dependent concat. The inner (dependent) stream is drained in
  // batches; outer tuples are prefetched into a demand-bounded buffer and
  // opened one inner at a time, so `current_` keeps the stable-storage
  // contract. Guard parity with Next(): one check per emitted inner
  // tuple, one per unmatched outer emission, one per outer advance (the
  // oracle's inner-EOS + outer-pull iteration), one at outer EOS.
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (eos_) return Status::OK();
    while (out->size() < max) {
      if (inner_ != nullptr) {
        XQC_RETURN_IF_ERROR(inner_->NextBatch(&in_, max - out->size()));
        if (!in_.empty()) {
          XQC_RETURN_IF_ERROR(
              ev_->guard()->CheckSteps(static_cast<int64_t>(in_.size())));
          inner_matched_ = true;
          for (size_t i = 0; i < in_.size(); i++) {
            Tuple joined = Tuple::Concat(current_, in_[i]);
            if (outer_) {
              Tuple flag;
              flag.Set(op_->name, {AtomicValue::Boolean(false)});
              joined = Tuple::Concat(flag, joined);
            }
            out->push(std::move(joined));
          }
          continue;
        }
        bool unmatched = outer_ && !inner_matched_;
        inner_.reset();
        if (unmatched) {
          XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
          Tuple flag;
          flag.Set(op_->name, {AtomicValue::Boolean(true)});
          out->push(Tuple::Concat(flag, current_));
          continue;
        }
      }
      if (opos_ >= ob_.size()) {
        XQC_RETURN_IF_ERROR(child_->NextBatch(&ob_, max - out->size()));
        opos_ = 0;
        if (ob_.empty()) {
          XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
          eos_ = true;
          break;
        }
      }
      XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
      current_ = std::move(ob_[opos_++]);
      EvalCtx dc = c_;
      dc.tuple = &current_;
      dc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(inner_, ev_->OpenTable(*op_->deps[0], dc));
      inner_matched_ = false;
    }
    return Status::OK();
  }
  void Close() override {
    inner_.reset();
    child_->Close();
  }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  TupleIteratorPtr child_;
  bool outer_;
  Tuple current_;
  TupleIteratorPtr inner_;
  bool inner_matched_ = false;
  bool eos_ = false;
  TupleBatch in_;   // inner tuples of the current outer
  TupleBatch ob_;   // prefetched outer tuples
  size_t opos_ = 0;
};

/// MapIndex[q] / MapIndexStep[q]: appends [q:i] with i = 1, 2, ...
class MapIndexIter : public TupleIterator {
 public:
  MapIndexIter(const Op* op, TupleIteratorPtr child)
      : op_(op), child_(std::move(child)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    Tuple t;
    XQC_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) return false;
    Tuple idx;
    idx.Set(op_->name, {AtomicValue::Integer(++i_)});
    *out = Tuple::Concat(t, idx);
    return true;
  }
  // Batched 1:1 position numbering; checks nothing, like Next(). The
  // demand bound passes straight through, which lets a positional
  // Select above clamp how much source is evaluated below.
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (eos_) return Status::OK();
    XQC_RETURN_IF_ERROR(child_->NextBatch(&in_, max));
    if (in_.empty()) {
      eos_ = true;
      return Status::OK();
    }
    for (size_t i = 0; i < in_.size(); i++) {
      Tuple idx;
      idx.Set(op_->name, {AtomicValue::Integer(++i_)});
      out->push(Tuple::Concat(in_[i], idx));
    }
    return Status::OK();
  }
  void Close() override { child_->Close(); }

 private:
  const Op* op_;
  TupleIteratorPtr child_;
  int64_t i_ = 0;
  bool eos_ = false;
  TupleBatch in_;
};

/// MapFromItem{f}: one tuple per input item. When the input is itself a
/// MapToItem (a nested FLWOR body), its tuple stream is pulled
/// incrementally — the full item sequence is never materialized;
/// otherwise the items materialize once and tuples are still produced on
/// demand. Every produced tuple counts toward stats().source_tuples,
/// the "input tuples touched" measure of streaming's early termination.
class MapFromItemIter : public TupleIterator {
 public:
  MapFromItemIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c)
      : ev_(ev), op_(op), c_(c) {}
  Status Open() override {
    const Op& input = *op_->inputs[0];
    if (input.kind == OpKind::kMapToItem) {
      XQC_ASSIGN_OR_RETURN(src_, ev_->OpenTable(*input.inputs[0], c_));
      item_dep_ = input.deps[0].get();
      return Status::OK();
    }
    XQC_ASSIGN_OR_RETURN(buf_, ev_->EvalItems(input, c_));
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    while (true) {
      XQC_RETURN_IF_ERROR(ev_->guard()->Check());
      if (pos_ < buf_.size()) {
        Sequence one{buf_[pos_++]};
        EvalCtx dc = c_;
        dc.items = &one;
        dc.tuple = nullptr;
        XQC_ASSIGN_OR_RETURN(*out, ev_->EvalTuple(*op_->deps[0], dc));
        XQC_RETURN_IF_ERROR(ev_->guard()->AccountTuples(1));
        ev_->mutable_stats()->source_tuples++;
        return true;
      }
      if (src_ == nullptr) return false;
      Tuple t;
      XQC_ASSIGN_OR_RETURN(bool has, src_->Next(&t));
      if (!has) {
        src_.reset();
        return false;
      }
      EvalCtx dc = c_;
      dc.tuple = &t;
      dc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(buf_, ev_->EvalItems(*item_dep_, dc));
      pos_ = 0;
    }
  }
  // Batched tuple production. Guard parity with Next(): one check per
  // produced tuple, one per source-tuple pull, one for the iteration
  // that discovers the end. AccountTuples stays per tuple (not chunked)
  // so the fault injector's Nth-allocation trip point is unchanged.
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (eos_) return Status::OK();
    while (out->size() < max) {
      if (pos_ < buf_.size()) {
        size_t k = buf_.size() - pos_;
        if (k > max - out->size()) k = max - out->size();
        XQC_RETURN_IF_ERROR(
            ev_->guard()->CheckSteps(static_cast<int64_t>(k)));
        for (size_t i = 0; i < k; i++) {
          Sequence one{buf_[pos_++]};
          EvalCtx dc = c_;
          dc.items = &one;
          dc.tuple = nullptr;
          XQC_ASSIGN_OR_RETURN(Tuple r, ev_->EvalTuple(*op_->deps[0], dc));
          XQC_RETURN_IF_ERROR(ev_->guard()->AccountTuples(1));
          ev_->mutable_stats()->source_tuples++;
          out->push(std::move(r));
        }
        continue;
      }
      if (src_ == nullptr) {
        XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
        eos_ = true;
        break;
      }
      if (spos_ >= sb_.size()) {
        XQC_RETURN_IF_ERROR(src_->NextBatch(&sb_, max - out->size()));
        spos_ = 0;
        if (sb_.empty()) {
          XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
          src_.reset();
          eos_ = true;
          break;
        }
      }
      XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
      cur_ = std::move(sb_[spos_++]);
      EvalCtx dc = c_;
      dc.tuple = &cur_;
      dc.items = nullptr;
      XQC_ASSIGN_OR_RETURN(buf_, ev_->EvalItems(*item_dep_, dc));
      pos_ = 0;
    }
    return Status::OK();
  }
  void Close() override {
    src_.reset();
    buf_.clear();
    pos_ = 0;
  }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  TupleIteratorPtr src_;           // tuple source of a MapToItem input
  const Op* item_dep_ = nullptr;   // its per-tuple item plan
  Sequence buf_;
  size_t pos_ = 0;
  bool eos_ = false;
  TupleBatch sb_;   // prefetched source tuples
  size_t spos_ = 0;
  Tuple cur_;       // stable storage for the current source tuple
};

/// Join / LOuterJoin: materializes and indexes the right (build) side at
/// Open — reusing the evaluator's table/index caches — then probes with
/// left tuples as they stream in. The first left tuple is peeked so the
/// join strategy can inspect its field layout, exactly like the
/// materializing EvalJoin does with left[0].
class JoinIter : public TupleIterator {
 public:
  JoinIter(PlanEvaluator* ev, const Op* op, const EvalCtx& c,
           TupleIteratorPtr left, bool outer)
      : ev_(ev), op_(op), c_(c), left_(std::move(left)), outer_(outer) {}
  Status Open() override {
    XQC_ASSIGN_OR_RETURN(has_peeked_, left_->Next(&peeked_));
    left_done_ = !has_peeked_;
    bool cacheable = false;
    XQC_ASSIGN_OR_RETURN(right_,
                         ev_->MaterializeJoinRight(*op_, c_, &cacheable));
    XQC_ASSIGN_OR_RETURN(
        strategy_, ev_->PlanJoinStrategy(*op_, c_,
                                         has_peeked_ ? peeked_ : Tuple(),
                                         right_, cacheable));
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    while (true) {
      XQC_RETURN_IF_ERROR(ev_->guard()->Check());
      if (bpos_ < buf_.size()) {
        *out = std::move(buf_[bpos_++]);
        return true;
      }
      if (left_done_) return false;
      buf_.clear();
      bpos_ = 0;
      Tuple l;
      if (has_peeked_) {
        l = std::move(peeked_);
        has_peeked_ = false;
      } else {
        XQC_ASSIGN_OR_RETURN(bool has, left_->Next(&l));
        if (!has) {
          left_done_ = true;
          return false;
        }
      }
      XQC_RETURN_IF_ERROR(
          ev_->ProbeJoinTuple(*op_, strategy_, c_, l, *right_, outer_, &buf_));
      XQC_RETURN_IF_ERROR(
          ev_->guard()->AccountTuples(static_cast<int64_t>(buf_.size())));
    }
  }
  // Batched probe: left tuples are prefetched in demand-bounded batches
  // and probed one at a time as the output buffer drains (a probe's
  // whole match set is buffered either way, exactly like Next()). Guard
  // parity: one check per emitted row, one per probed left tuple, one at
  // left end-of-stream; AccountTuples stays once-per-probe with the
  // probe's row count, as in Next().
  Status NextBatch(TupleBatch* out, size_t max) override {
    out->clear();
    if (eos_) return Status::OK();
    while (out->size() < max) {
      if (bpos_ < buf_.size()) {
        size_t k = buf_.size() - bpos_;
        if (k > max - out->size()) k = max - out->size();
        XQC_RETURN_IF_ERROR(
            ev_->guard()->CheckSteps(static_cast<int64_t>(k)));
        if (out->empty() && bpos_ == 0 && k == buf_.size()) {
          // Whole probe result fits the demand: make it the batch in
          // O(1) and return it as a short batch (the contract allows
          // short non-empty batches) — zero per-row moves, one batch
          // per probe.
          out->adopt(&buf_);
          return Status::OK();
        }
        for (size_t i = 0; i < k; i++) {
          out->push(std::move(buf_[bpos_++]));
        }
        continue;
      }
      Tuple l;
      if (has_peeked_) {
        l = std::move(peeked_);
        has_peeked_ = false;
      } else if (left_done_) {
        XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
        eos_ = true;
        break;
      } else {
        if (lpos_ >= lb_.size()) {
          XQC_RETURN_IF_ERROR(left_->NextBatch(&lb_, max - out->size()));
          lpos_ = 0;
          if (lb_.empty()) {
            left_done_ = true;
            XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
            eos_ = true;
            break;
          }
        }
        l = std::move(lb_[lpos_++]);
      }
      XQC_RETURN_IF_ERROR(ev_->guard()->CheckSteps(1));
      buf_.clear();
      bpos_ = 0;
      XQC_RETURN_IF_ERROR(
          ev_->ProbeJoinTuple(*op_, strategy_, c_, l, *right_, outer_, &buf_));
      XQC_RETURN_IF_ERROR(
          ev_->guard()->AccountTuples(static_cast<int64_t>(buf_.size())));
    }
    return Status::OK();
  }
  void Close() override { left_->Close(); }

 private:
  PlanEvaluator* ev_;
  const Op* op_;
  EvalCtx c_;
  TupleIteratorPtr left_;
  bool outer_;
  Tuple peeked_;
  bool has_peeked_ = false;
  bool left_done_ = false;
  bool eos_ = false;
  std::shared_ptr<const Table> right_;
  JoinStrategy strategy_;
  Table buf_;  // output rows of the current probe
  size_t bpos_ = 0;
  TupleBatch lb_;  // prefetched left (probe-side) tuples
  size_t lpos_ = 0;
};

}  // namespace

Result<TupleIteratorPtr> PlanEvaluator::OpenTable(const Op& op,
                                                  const EvalCtx& c) {
  TupleIteratorPtr it;
  switch (op.kind) {
    case OpKind::kSelect: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr child,
                           OpenTable(*op.inputs[0], c));
      const Op& input = *op.inputs[0];
      int64_t bound = -1;
      if (input.kind == OpKind::kMapIndex ||
          input.kind == OpKind::kMapIndexStep) {
        bound = PositionalBound(*op.deps[0], input.name);
      }
      it = std::make_unique<SelectIter>(this, &op, c, std::move(child), bound);
      break;
    }
    case OpKind::kProduct: {
      it = std::make_unique<ProductIter>(this, &op, c);
      break;
    }
    case OpKind::kJoin:
    case OpKind::kLOuterJoin: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr left, OpenTable(*op.inputs[0], c));
      it = std::make_unique<JoinIter>(this, &op, c, std::move(left),
                                      op.kind == OpKind::kLOuterJoin);
      break;
    }
    case OpKind::kMap: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr child,
                           OpenTable(*op.inputs[0], c));
      it = std::make_unique<MapIter>(this, &op, c, std::move(child));
      break;
    }
    case OpKind::kOMap: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr child,
                           OpenTable(*op.inputs[0], c));
      it = std::make_unique<OMapIter>(&op, std::move(child));
      break;
    }
    case OpKind::kMapConcat:
    case OpKind::kOMapConcat: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr child,
                           OpenTable(*op.inputs[0], c));
      it = std::make_unique<MapConcatIter>(this, &op, c, std::move(child),
                                           op.kind == OpKind::kOMapConcat);
      break;
    }
    case OpKind::kMapIndex:
    case OpKind::kMapIndexStep: {
      XQC_ASSIGN_OR_RETURN(TupleIteratorPtr child,
                           OpenTable(*op.inputs[0], c));
      it = std::make_unique<MapIndexIter>(&op, std::move(child));
      break;
    }
    case OpKind::kMapFromItem:
      it = std::make_unique<MapFromItemIter>(this, &op, c);
      break;
    default: {
      // GroupBy / OrderBy (pipeline breakers) and every non-streaming
      // operator: materialize once, then iterate.
      XQC_ASSIGN_OR_RETURN(Table t, EvalTable(op, c));
      it = std::make_unique<TableIter>(std::move(t));
      break;
    }
  }
  XQC_RETURN_IF_ERROR(it->Open());
  return it;
}

}  // namespace xqc
