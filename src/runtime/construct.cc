#include "src/runtime/construct.h"

#include "src/base/status.h"

namespace xqc {
namespace {

/// Joins the atomized lexical forms of `content` with single spaces.
Result<std::string> JoinLexical(const Sequence& content) {
  XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(content));
  std::string out;
  for (size_t i = 0; i < atoms.size(); i++) {
    if (i > 0) out.push_back(' ');
    out += atoms[i].atomic().Lexical();
  }
  return out;
}

/// Nodes in the subtree rooted at `n` (for guard accounting of deep
/// copies; attributes count as nodes).
int64_t SubtreeNodes(const Node& n) {
  int64_t count = 1 + static_cast<int64_t>(n.attributes.size());
  for (const NodePtr& c : n.children) count += SubtreeNodes(*c);
  return count;
}

/// Appends `content` items into `parent` children: atomic runs become text
/// nodes, document nodes splice their children, other nodes are deep-copied.
Status AppendContent(const NodePtr& parent, const Sequence& content,
                     bool allow_attributes, QueryGuard* guard) {
  std::string text;
  bool prev_atomic = false;
  bool seen_non_attribute = false;
  auto flush = [&] {
    if (!text.empty()) {
      Append(parent, NewText(std::move(text)));
      text.clear();
    }
    prev_atomic = false;
  };
  auto account_copy = [&](const Node& n) -> Status {
    if (guard == nullptr) return Status::OK();
    XQC_RETURN_IF_ERROR(guard->Check());
    return guard->AccountNodes(SubtreeNodes(n));
  };
  for (const Item& it : content) {
    if (it.IsAtomic()) {
      if (prev_atomic) text.push_back(' ');
      text += it.atomic().Lexical();
      prev_atomic = true;
      seen_non_attribute = true;
      continue;
    }
    flush();
    const Node& n = *it.node();
    switch (n.kind) {
      case NodeKind::kAttribute:
        if (!allow_attributes) {
          return Status::XQueryError("XPTY0004",
                                     "attribute node in document content");
        }
        if (seen_non_attribute) {
          return Status::XQueryError(
              "XQTY0024",
              "attribute node after non-attribute content in constructor");
        }
        XQC_RETURN_IF_ERROR(account_copy(n));
        Append(parent, DeepCopy(n, /*keep_types=*/true));
        continue;
      case NodeKind::kDocument:
        // Document nodes splice their children into the content.
        for (const NodePtr& c : n.children) {
          XQC_RETURN_IF_ERROR(account_copy(*c));
          Append(parent, DeepCopy(*c, /*keep_types=*/true));
        }
        seen_non_attribute = true;
        continue;
      case NodeKind::kText:
        // Merge adjacent text directly into the pending buffer so runs of
        // text nodes coalesce.
        text += n.value;
        prev_atomic = false;
        seen_non_attribute = true;
        continue;
      default:
        XQC_RETURN_IF_ERROR(account_copy(n));
        Append(parent, DeepCopy(n, /*keep_types=*/true));
        seen_non_attribute = true;
        continue;
    }
  }
  flush();
  return Status::OK();
}

/// One guard charge for the freshly built wrapper node plus its character
/// data (no-op without a guard).
Status AccountNew(QueryGuard* guard, int64_t bytes) {
  if (guard == nullptr) return Status::OK();
  XQC_RETURN_IF_ERROR(guard->Check());
  XQC_RETURN_IF_ERROR(guard->AccountNodes(1));
  if (bytes > 0) XQC_RETURN_IF_ERROR(guard->AccountMemory(bytes));
  return Status::OK();
}

}  // namespace

Result<NodePtr> ConstructElement(Symbol name, const Sequence& content,
                                 QueryGuard* guard) {
  XQC_RETURN_IF_ERROR(AccountNew(guard, 0));
  NodePtr elem = NewElement(name);
  XQC_RETURN_IF_ERROR(
      AppendContent(elem, content, /*allow_attributes=*/true, guard));
  FinalizeTree(elem);
  return elem;
}

Result<NodePtr> ConstructAttribute(Symbol name, const Sequence& content,
                                   QueryGuard* guard) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  XQC_RETURN_IF_ERROR(AccountNew(guard, static_cast<int64_t>(value.size())));
  NodePtr attr = NewAttribute(name, std::move(value));
  FinalizeTree(attr);
  return attr;
}

Result<NodePtr> ConstructText(const Sequence& content, QueryGuard* guard) {
  if (content.empty()) return NodePtr();
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  XQC_RETURN_IF_ERROR(AccountNew(guard, static_cast<int64_t>(value.size())));
  NodePtr text = NewText(std::move(value));
  FinalizeTree(text);
  return text;
}

Result<NodePtr> ConstructComment(const Sequence& content, QueryGuard* guard) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  XQC_RETURN_IF_ERROR(AccountNew(guard, static_cast<int64_t>(value.size())));
  NodePtr c = NewComment(std::move(value));
  FinalizeTree(c);
  return c;
}

Result<NodePtr> ConstructPI(Symbol target, const Sequence& content,
                            QueryGuard* guard) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  XQC_RETURN_IF_ERROR(AccountNew(guard, static_cast<int64_t>(value.size())));
  NodePtr pi = NewPI(target, std::move(value));
  FinalizeTree(pi);
  return pi;
}

Result<NodePtr> ConstructDocument(const Sequence& content, QueryGuard* guard) {
  XQC_RETURN_IF_ERROR(AccountNew(guard, 0));
  NodePtr doc = NewDocument();
  XQC_RETURN_IF_ERROR(
      AppendContent(doc, content, /*allow_attributes=*/false, guard));
  FinalizeTree(doc);
  return doc;
}

}  // namespace xqc
