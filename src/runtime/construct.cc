#include "src/runtime/construct.h"

#include "src/base/status.h"

namespace xqc {
namespace {

/// Joins the atomized lexical forms of `content` with single spaces.
Result<std::string> JoinLexical(const Sequence& content) {
  XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(content));
  std::string out;
  for (size_t i = 0; i < atoms.size(); i++) {
    if (i > 0) out.push_back(' ');
    out += atoms[i].atomic().Lexical();
  }
  return out;
}

/// Appends `content` items into `parent` children: atomic runs become text
/// nodes, document nodes splice their children, other nodes are deep-copied.
Status AppendContent(const NodePtr& parent, const Sequence& content,
                     bool allow_attributes) {
  std::string text;
  bool prev_atomic = false;
  bool seen_non_attribute = false;
  auto flush = [&] {
    if (!text.empty()) {
      Append(parent, NewText(std::move(text)));
      text.clear();
    }
    prev_atomic = false;
  };
  for (const Item& it : content) {
    if (it.IsAtomic()) {
      if (prev_atomic) text.push_back(' ');
      text += it.atomic().Lexical();
      prev_atomic = true;
      seen_non_attribute = true;
      continue;
    }
    flush();
    const Node& n = *it.node();
    switch (n.kind) {
      case NodeKind::kAttribute:
        if (!allow_attributes) {
          return Status::XQueryError("XPTY0004",
                                     "attribute node in document content");
        }
        if (seen_non_attribute) {
          return Status::XQueryError(
              "XQTY0024",
              "attribute node after non-attribute content in constructor");
        }
        Append(parent, DeepCopy(n, /*keep_types=*/true));
        continue;
      case NodeKind::kDocument:
        // Document nodes splice their children into the content.
        for (const NodePtr& c : n.children) {
          Append(parent, DeepCopy(*c, /*keep_types=*/true));
        }
        seen_non_attribute = true;
        continue;
      case NodeKind::kText:
        // Merge adjacent text directly into the pending buffer so runs of
        // text nodes coalesce.
        text += n.value;
        prev_atomic = false;
        seen_non_attribute = true;
        continue;
      default:
        Append(parent, DeepCopy(n, /*keep_types=*/true));
        seen_non_attribute = true;
        continue;
    }
  }
  flush();
  return Status::OK();
}

}  // namespace

Result<NodePtr> ConstructElement(Symbol name, const Sequence& content) {
  NodePtr elem = NewElement(name);
  XQC_RETURN_IF_ERROR(AppendContent(elem, content, /*allow_attributes=*/true));
  FinalizeTree(elem);
  return elem;
}

Result<NodePtr> ConstructAttribute(Symbol name, const Sequence& content) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  NodePtr attr = NewAttribute(name, std::move(value));
  FinalizeTree(attr);
  return attr;
}

Result<NodePtr> ConstructText(const Sequence& content) {
  if (content.empty()) return NodePtr();
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  NodePtr text = NewText(std::move(value));
  FinalizeTree(text);
  return text;
}

Result<NodePtr> ConstructComment(const Sequence& content) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  NodePtr c = NewComment(std::move(value));
  FinalizeTree(c);
  return c;
}

Result<NodePtr> ConstructPI(Symbol target, const Sequence& content) {
  XQC_ASSIGN_OR_RETURN(std::string value, JoinLexical(content));
  NodePtr pi = NewPI(target, std::move(value));
  FinalizeTree(pi);
  return pi;
}

Result<NodePtr> ConstructDocument(const Sequence& content) {
  NodePtr doc = NewDocument();
  XQC_RETURN_IF_ERROR(AppendContent(doc, content, /*allow_attributes=*/false));
  FinalizeTree(doc);
  return doc;
}

}  // namespace xqc
