// The paper's XQuery join algorithms (Section 6, Figure 6).
//
// The hash join builds a hash table over the inner (right) input keyed on
// (value, type) pairs enumerated by promoteToSimpleTypes, probes with the
// outer (left) input, re-checks the original types against Table 2
// (fs:convert-operand compatibility), sorts matches by original inner
// sequence order and removes duplicates — preserving order and the
// existential quantification of XQuery general comparisons.
//
// Beyond the paper's type-level line-25 check we also re-verify op:equal on
// the stored ORIGINAL (value, type) pairs: the type check alone would admit
// untyped-vs-untyped pairs that collide on their xs:double keys but differ
// as strings (e.g. "1" vs "1.0"), which Table 2 row 1 compares as strings.
// The paper stores the original value and type in each hash entry for
// exactly this purpose.
#ifndef XQC_RUNTIME_JOINS_H_
#define XQC_RUNTIME_JOINS_H_

#include <functional>
#include <memory>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/opt/key_class.h"
#include "src/runtime/tuple.h"
#include "src/types/compare.h"

namespace xqc {

/// Evaluates one side's join-key expression on a tuple, atomized (fn:data).
using KeyFn = std::function<Result<Sequence>(const Tuple&)>;
/// Evaluates the full join predicate on a concatenated tuple (NL join).
using PredFn = std::function<Result<bool>(const Tuple&)>;

/// Order-preserving nested-loop join: left-major order, right order within.
/// With `outer` set, emits [null_field:true]++left_tuple for unmatched left
/// tuples and prepends [null_field:false] otherwise (LOuterJoin semantics).
Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const PredFn& pred, bool outer,
                             Symbol null_field);

/// The Figure 6 equality hash join (use_ordered_index=false) or its
/// B-tree-style ordered-index variant (use_ordered_index=true). Implements
/// `=` (general equality) between the two key expressions with full XQuery
/// predicate semantics. A non-null `residual` predicate (the remaining
/// conjuncts of a multi-predicate join) filters each candidate joined tuple;
/// outer-join null rows are emitted only when no candidate survives it.
/// Same output contract as NestedLoopJoin.
Result<Table> EqualityJoin(const Table& left, const KeyFn& left_key,
                           const Table& right, const KeyFn& right_key,
                           bool outer, Symbol null_field,
                           bool use_ordered_index,
                           const PredFn* residual = nullptr);

/// A materialized inner side (the hash table / ordered index of Figure 6),
/// reusable across probes. The paper's physical operators are index joins:
/// an independent inner input's index is built once and kept (the
/// evaluator caches these across re-executions of correlated subplans).
class MaterializedInner;

/// `mode` selects the key representation (see key_class.h): the general
/// promoteToSimpleTypes enumeration, or the statically specialized
/// single-entry string/double keys. Build and probe must use the SAME mode.
/// The optional guard (non-owning) is checked and charged per indexed key
/// entry, so adversarially large build sides honor deadlines and budgets.
Result<std::shared_ptr<const MaterializedInner>> MaterializeInner(
    const Table& right, const KeyFn& right_key, bool use_ordered_index,
    KeyMode mode = KeyMode::kGeneralKeys, QueryGuard* guard = nullptr);

/// EqualityJoin against a prebuilt inner index. `right` must be the table
/// the index was built from.
Result<Table> EqualityJoinWithIndex(const Table& left, const KeyFn& left_key,
                                    const Table& right,
                                    const MaterializedInner& inner, bool outer,
                                    Symbol null_field,
                                    const PredFn* residual = nullptr);

/// The inequality (range) variant of the Section 6 sort join: an ordered
/// index over the inner keys (numerics ordered by value with untyped cast
/// through xs:double; strings/untyped ordered lexically) probed with range
/// scans. Implements `left_key OP right_key` existentially with
/// fs:convert-operand semantics, order-preserving and duplicate-free like
/// EqualityJoin. OP must be one of lt/le/gt/ge. This is what gives XMark
/// Q11/Q12 (income > 5000*initial) an indexed plan — the paper's Table 4
/// Q12 row.
class MaterializedRangeInner;

Result<std::shared_ptr<const MaterializedRangeInner>> MaterializeRangeInner(
    const Table& right, const KeyFn& right_key, QueryGuard* guard = nullptr);

Result<Table> InequalityJoinWithIndex(const Table& left, const KeyFn& left_key,
                                      const Table& right,
                                      const MaterializedRangeInner& inner,
                                      CompOp op, bool outer, Symbol null_field,
                                      const PredFn* residual = nullptr);

// ---- per-left-tuple probes --------------------------------------------------
// The whole-table joins above are loops over these: one call appends every
// output row for a single left tuple. The streaming JoinIter (iterator.cc)
// materializes only the build side and probes tuple-at-a-time as its left
// input is pulled, so early-terminating consumers stop the probe stream.

/// The unmatched-left outer-join row: [null_field:true] ++ base.
Tuple OuterNullRow(Symbol null_field, const Tuple& base);

/// Equality probe with pre-atomized left keys (fn:data already applied).
Status EqualityProbe(const Tuple& left, const Sequence& left_keys,
                     const Table& right, const MaterializedInner& inner,
                     bool outer, Symbol null_field, const PredFn* residual,
                     Table* out);

/// Range probe with pre-atomized left keys.
Status InequalityProbe(const Tuple& left, const Sequence& left_keys,
                       const Table& right, const MaterializedRangeInner& inner,
                       CompOp op, bool outer, Symbol null_field,
                       const PredFn* residual, Table* out);

/// Nested-loop probe: the full predicate against every right tuple.
Status NestedLoopProbe(const Tuple& left, const Table& right,
                       const PredFn& pred, bool outer, Symbol null_field,
                       Table* out);

}  // namespace xqc

#endif  // XQC_RUNTIME_JOINS_H_
