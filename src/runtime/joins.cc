#include "src/runtime/joins.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/base/strutil.h"
#include "src/types/compare.h"

namespace xqc {
namespace {

Tuple NullRow(Symbol null_field, bool is_null, const Tuple& base) {
  Tuple flag;
  flag.Set(null_field, {AtomicValue::Boolean(is_null)});
  return Tuple::Concat(flag, base);
}

/// One hash-table entry: the ORIGINAL key value (before promotion) plus the
/// inner tuple's ordinal position (Figure 6 stores (key, typeof(key), tup,
/// order); the tuple itself is recovered from the table by index).
struct Entry {
  AtomicValue original;
  size_t order;
};

}  // namespace

namespace {

/// Key enumeration per mode: the general Figure 6 promotion, or the
/// statically specialized single-entry representations (key_class.h).
void AppendKeys(const AtomicValue& v, KeyMode mode,
                std::vector<JoinKey>* out) {
  switch (mode) {
    case KeyMode::kGeneralKeys: {
      std::vector<JoinKey> keys = PromoteToSimpleTypes(v);
      out->insert(out->end(), keys.begin(), keys.end());
      return;
    }
    case KeyMode::kStringKeys:
      out->push_back(JoinKey{AtomicType::kString, v.Lexical()});
      return;
    case KeyMode::kDoubleKeys: {
      double d;
      if (v.is_numeric()) {
        d = v.AsDouble();
      } else if (v.type() == AtomicType::kUntypedAtomic ||
                 v.type() == AtomicType::kString) {
        if (!ParseDouble(v.AsString(), &d)) return;  // never comparable
      } else {
        return;
      }
      if (std::isnan(d)) return;
      out->push_back(NumericJoinKey(d));
      return;
    }
    case KeyMode::kNoMatch:
      return;
  }
}

}  // namespace

/// The materialized inner side: a hash index or an ordered (B-tree style)
/// index over the same (value, type) key space.
class MaterializedInner {
 public:
  MaterializedInner(bool ordered, KeyMode mode)
      : ordered_(ordered), mode_(mode) {}

  KeyMode mode() const { return mode_; }

  void Put(const JoinKey& key, Entry e) {
    if (ordered_) {
      tree_[std::make_pair(static_cast<int>(key.type), key.canon)].push_back(
          std::move(e));
    } else {
      hash_[key].push_back(std::move(e));
    }
  }

  const std::vector<Entry>* Get(const JoinKey& key) const {
    if (ordered_) {
      auto it =
          tree_.find(std::make_pair(static_cast<int>(key.type), key.canon));
      return it == tree_.end() ? nullptr : &it->second;
    }
    auto it = hash_.find(key);
    return it == hash_.end() ? nullptr : &it->second;
  }

 private:
  bool ordered_;
  KeyMode mode_;
  std::unordered_map<JoinKey, std::vector<Entry>, JoinKeyHash> hash_;
  std::map<std::pair<int, std::string>, std::vector<Entry>> tree_;
};

// materialize (Figure 6 lines 1-16): index the inner input on every
// (value, type) pair its keys promote to, remembering original value and
// sequence order.
Result<std::shared_ptr<const MaterializedInner>> MaterializeInner(
    const Table& right, const KeyFn& right_key, bool use_ordered_index,
    KeyMode mode, QueryGuard* guard) {
  auto index = std::make_shared<MaterializedInner>(use_ordered_index, mode);
  std::vector<JoinKey> keys;
  for (size_t order = 0; order < right.size(); order++) {
    if (guard != nullptr) {
      // One step per indexed row, credited a check-interval at a time
      // (same totals and slow-check cadence as the per-row Check this
      // replaces); memory accounting stays per row so the Nth-allocation
      // injector point is unchanged.
      if (order % static_cast<size_t>(QueryGuard::kCheckInterval) == 0) {
        int64_t chunk = static_cast<int64_t>(right.size() - order);
        if (chunk > QueryGuard::kCheckInterval) {
          chunk = QueryGuard::kCheckInterval;
        }
        XQC_RETURN_IF_ERROR(guard->CheckSteps(chunk));
      }
      XQC_RETURN_IF_ERROR(guard->AccountItems(1));
    }
    XQC_ASSIGN_OR_RETURN(Sequence key_vals, right_key(right[order]));
    for (const Item& key : key_vals) {
      const AtomicValue& v = key.atomic();
      keys.clear();
      AppendKeys(v, mode, &keys);
      for (const JoinKey& jk : keys) {
        index->Put(jk, Entry{v, order});
      }
    }
  }
  return std::shared_ptr<const MaterializedInner>(std::move(index));
}

namespace {

// allMatches (Figure 6 lines 17-32): probe with each promoted key of each
// outer key value, re-check the original types against Table 2 and the
// original values with op:equal, then sort by inner order and deduplicate
// (existential semantics; keeps the sorted order).
Result<std::vector<size_t>> AllMatches(const MaterializedInner& index,
                                       const Sequence& outer_keys) {
  std::vector<size_t> matches;
  std::vector<JoinKey> keys;
  for (const Item& key : outer_keys) {
    const AtomicValue& v = key.atomic();
    keys.clear();
    AppendKeys(v, index.mode(), &keys);
    for (const JoinKey& jk : keys) {
      const std::vector<Entry>* entries = index.Get(jk);
      if (entries == nullptr) continue;
      for (const Entry& e : *entries) {
        if (!ConvertCompatible(e.original.type(), v.type())) continue;
        Result<bool> eq = ValueCompareAtomic(CompOp::kEq, e.original, v);
        // Incomparable pairs are non-matches (the same join-compatible
        // relaxation GeneralCompare applies).
        if (eq.ok() && eq.value()) matches.push_back(e.order);
      }
    }
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  return matches;
}

}  // namespace

Tuple OuterNullRow(Symbol null_field, const Tuple& base) {
  return NullRow(null_field, true, base);
}

Status NestedLoopProbe(const Tuple& left, const Table& right,
                       const PredFn& pred, bool outer, Symbol null_field,
                       Table* out) {
  bool matched = false;
  for (const Tuple& r : right) {
    Tuple joined = Tuple::Concat(left, r);
    XQC_ASSIGN_OR_RETURN(bool hit, pred(joined));
    if (!hit) continue;
    matched = true;
    if (outer) {
      out->push_back(NullRow(null_field, false, joined));
    } else {
      out->push_back(std::move(joined));
    }
  }
  if (outer && !matched) {
    out->push_back(NullRow(null_field, true, left));
  }
  return Status::OK();
}

Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const PredFn& pred, bool outer,
                             Symbol null_field) {
  Table out;
  for (const Tuple& l : left) {
    XQC_RETURN_IF_ERROR(NestedLoopProbe(l, right, pred, outer, null_field,
                                        &out));
  }
  return out;
}

Status EqualityProbe(const Tuple& left, const Sequence& left_keys,
                     const Table& right, const MaterializedInner& inner,
                     bool outer, Symbol null_field, const PredFn* residual,
                     Table* out) {
  XQC_ASSIGN_OR_RETURN(std::vector<size_t> matches,
                       AllMatches(inner, left_keys));
  bool any = false;
  for (size_t m : matches) {
    Tuple joined = Tuple::Concat(left, right[m]);
    if (residual != nullptr) {
      XQC_ASSIGN_OR_RETURN(bool keep, (*residual)(joined));
      if (!keep) continue;
    }
    any = true;
    if (outer) {
      out->push_back(NullRow(null_field, false, joined));
    } else {
      out->push_back(std::move(joined));
    }
  }
  if (outer && !any) {
    out->push_back(NullRow(null_field, true, left));
  }
  return Status::OK();
}

Result<Table> EqualityJoinWithIndex(const Table& left, const KeyFn& left_key,
                                    const Table& right,
                                    const MaterializedInner& inner, bool outer,
                                    Symbol null_field,
                                    const PredFn* residual) {
  // equalityJoin (Figure 6 lines 33-49): the left input probes in order.
  Table out;
  for (const Tuple& l : left) {
    XQC_ASSIGN_OR_RETURN(Sequence keys, left_key(l));
    XQC_RETURN_IF_ERROR(EqualityProbe(l, keys, right, inner, outer,
                                      null_field, residual, &out));
  }
  return out;
}

Result<Table> EqualityJoin(const Table& left, const KeyFn& left_key,
                           const Table& right, const KeyFn& right_key,
                           bool outer, Symbol null_field,
                           bool use_ordered_index, const PredFn* residual) {
  XQC_ASSIGN_OR_RETURN(std::shared_ptr<const MaterializedInner> inner,
                       MaterializeInner(right, right_key, use_ordered_index));
  return EqualityJoinWithIndex(left, left_key, right, *inner, outer,
                               null_field, residual);
}

// ---- inequality (range) sort join -------------------------------------------

/// The inner side materialized as ordered lists, one per comparison domain:
/// numerics by double value (typed numerics and parseable untyped
/// separately, since untyped-vs-untyped compares as string), and one
/// lexically ordered list per non-numeric type (untyped raw strings under
/// xdt:untypedAtomic).
class MaterializedRangeInner {
 public:
  using OrderedList = std::vector<std::pair<double, size_t>>;
  using LexList = std::vector<std::pair<std::string, size_t>>;

  OrderedList num_typed;    // xs:integer/decimal/float/double keys
  OrderedList num_untyped;  // untyped keys that parse as numbers
  std::map<AtomicType, LexList> lex;  // per-type lexical lists

  void Sort() {
    std::sort(num_typed.begin(), num_typed.end());
    std::sort(num_untyped.begin(), num_untyped.end());
    for (auto& [t, list] : lex) std::sort(list.begin(), list.end());
  }
};

Result<std::shared_ptr<const MaterializedRangeInner>> MaterializeRangeInner(
    const Table& right, const KeyFn& right_key, QueryGuard* guard) {
  auto inner = std::make_shared<MaterializedRangeInner>();
  for (size_t order = 0; order < right.size(); order++) {
    if (guard != nullptr) {
      // Chunked step crediting, as in MaterializeInner above.
      if (order % static_cast<size_t>(QueryGuard::kCheckInterval) == 0) {
        int64_t chunk = static_cast<int64_t>(right.size() - order);
        if (chunk > QueryGuard::kCheckInterval) {
          chunk = QueryGuard::kCheckInterval;
        }
        XQC_RETURN_IF_ERROR(guard->CheckSteps(chunk));
      }
      XQC_RETURN_IF_ERROR(guard->AccountItems(1));
    }
    XQC_ASSIGN_OR_RETURN(Sequence key_vals, right_key(right[order]));
    for (const Item& key : key_vals) {
      const AtomicValue& v = key.atomic();
      if (v.is_numeric()) {
        double d = v.AsDouble();
        if (!std::isnan(d)) inner->num_typed.emplace_back(d, order);
        continue;
      }
      if (v.type() == AtomicType::kUntypedAtomic) {
        inner->lex[AtomicType::kUntypedAtomic].emplace_back(v.AsString(),
                                                            order);
        double d;
        if (ParseDouble(v.AsString(), &d) && !std::isnan(d)) {
          inner->num_untyped.emplace_back(d, order);
        }
        continue;
      }
      AtomicType bucket =
          v.type() == AtomicType::kAnyURI ? AtomicType::kString : v.type();
      inner->lex[bucket].emplace_back(v.Lexical(), order);
    }
  }
  inner->Sort();
  return std::shared_ptr<const MaterializedRangeInner>(std::move(inner));
}

namespace {

/// Appends the orders of all entries r in `list` satisfying `key OP r`.
template <typename K, typename L>
void RangeScan(const L& list, CompOp op, const K& key,
               std::vector<size_t>* out) {
  auto lo = list.begin();
  auto hi = list.end();
  switch (op) {
    case CompOp::kLt:  // key < r  =>  r in (key, +inf)
      lo = std::upper_bound(list.begin(), list.end(), key,
                            [](const K& k, const auto& e) { return k < e.first; });
      break;
    case CompOp::kLe:  // key <= r  =>  r in [key, +inf)
      lo = std::lower_bound(list.begin(), list.end(), key,
                            [](const auto& e, const K& k) { return e.first < k; });
      break;
    case CompOp::kGt:  // key > r  =>  r in (-inf, key)
      hi = std::lower_bound(list.begin(), list.end(), key,
                            [](const auto& e, const K& k) { return e.first < k; });
      break;
    case CompOp::kGe:  // key >= r  =>  r in (-inf, key]
      hi = std::upper_bound(list.begin(), list.end(), key,
                            [](const K& k, const auto& e) { return k < e.first; });
      break;
    default:
      return;
  }
  for (auto it = lo; it != hi; ++it) out->push_back(it->second);
}

}  // namespace

Status InequalityProbe(const Tuple& left, const Sequence& left_keys,
                       const Table& right, const MaterializedRangeInner& inner,
                       CompOp op, bool outer, Symbol null_field,
                       const PredFn* residual, Table* out) {
  auto lex_list = [&inner](AtomicType t) -> const MaterializedRangeInner::LexList* {
    auto it = inner.lex.find(t);
    return it == inner.lex.end() ? nullptr : &it->second;
  };
  std::vector<size_t> matches;
  for (const Item& key : left_keys) {
    const AtomicValue& v = key.atomic();
    if (v.is_numeric()) {
      double d = v.AsDouble();
      if (std::isnan(d)) continue;
      // Numeric probe: typed numerics and untyped-cast-to-double.
      RangeScan(inner.num_typed, op, d, &matches);
      RangeScan(inner.num_untyped, op, d, &matches);
      continue;
    }
    if (v.type() == AtomicType::kUntypedAtomic) {
      // Untyped vs numeric inner: cast to double.
      double d;
      if (ParseDouble(v.AsString(), &d) && !std::isnan(d)) {
        RangeScan(inner.num_typed, op, d, &matches);
      }
      // Untyped vs any lexical inner type T: convert to T (= trim in our
      // lexical model) and compare lexically; untyped-vs-untyped is the
      // xs:string row of Table 2.
      for (const auto& [t, list] : inner.lex) {
        RangeScan(list, op, v.AsString(), &matches);
      }
      continue;
    }
    AtomicType bucket =
        v.type() == AtomicType::kAnyURI ? AtomicType::kString : v.type();
    std::string lexv = v.Lexical();
    if (const auto* same = lex_list(bucket)) {
      RangeScan(*same, op, lexv, &matches);
    }
    if (const auto* unt = lex_list(AtomicType::kUntypedAtomic)) {
      RangeScan(*unt, op, lexv, &matches);  // untyped inner converts to T
    }
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  bool any = false;
  for (size_t m : matches) {
    Tuple joined = Tuple::Concat(left, right[m]);
    if (residual != nullptr) {
      XQC_ASSIGN_OR_RETURN(bool keep, (*residual)(joined));
      if (!keep) continue;
    }
    any = true;
    if (outer) {
      out->push_back(NullRow(null_field, false, joined));
    } else {
      out->push_back(std::move(joined));
    }
  }
  if (outer && !any) {
    out->push_back(NullRow(null_field, true, left));
  }
  return Status::OK();
}

Result<Table> InequalityJoinWithIndex(const Table& left, const KeyFn& left_key,
                                      const Table& right,
                                      const MaterializedRangeInner& inner,
                                      CompOp op, bool outer, Symbol null_field,
                                      const PredFn* residual) {
  Table out;
  for (const Tuple& l : left) {
    XQC_ASSIGN_OR_RETURN(Sequence keys, left_key(l));
    XQC_RETURN_IF_ERROR(InequalityProbe(l, keys, right, inner, op, outer,
                                        null_field, residual, &out));
  }
  return out;
}

}  // namespace xqc
