// Intra-query parallelism: partitioned execution of collection scans with
// a doc-order-preserving recombination (DESIGN.md "Intra-query
// parallelism").
//
// The parallel executor takes a plan that AnalyzeParallel (src/opt/
// parallel_infer.h) marked eligible — a pointwise pipeline over a
// Call[fn:collection] scan — and:
//
//   1. resolves the collection ONCE on the driver thread (so enumeration /
//      load errors surface exactly as in the serial run),
//   2. partitions the member documents into contiguous ordinal ranges —
//      and, when there are fewer documents than requested threads and the
//      plan allows it, splits large documents further by pre-order interval
//      ranges of the single downward TreeJoin's output,
//   3. runs each partition as an independent plan evaluation with a
//      PartitionSlice installed (runtime/eval.h), on a process-wide TaskPool
//      shared by every parallel query (QueryService traffic included); the
//      driver thread always participates, so progress never depends on pool
//      capacity,
//   4. gives each partition a guard slice: a private QueryGuard carrying the
//      parent's *remaining* deadline / memory / step budgets plus a shared
//      abort token — the first real error (or a parent-guard trip observed
//      by the driver, which polls every millisecond while waiting) cancels
//      the siblings, and
//   5. recombines: per-unit guard usage is re-charged to the parent guard in
//      unit order (so XQC0003/XQC0006 trips fire just like the serial run),
//      and unit outputs are merged in (collection ordinal, pre) order.
//
// The merge is a degenerate — and therefore trivially stable — k-way merge:
// ResolveCollection guarantees ordinal-increasing interval blocks and units
// are built over increasing (ordinal, pre-range) keys, so every item of
// unit i precedes every item of unit i+1 in document order and the merge is
// an ordered concatenation. This is what makes `--parallelism N` byte-
// identical to the serial oracle at every N, across cache-eviction-induced
// reload orders.
#ifndef XQC_RUNTIME_PARALLEL_H_
#define XQC_RUNTIME_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/compile/compiler.h"
#include "src/runtime/eval.h"

namespace xqc {

/// A small process-wide helper-thread pool. Submission is strictly
/// best-effort: TrySubmit enqueues only when an idle helper is available to
/// take the task, and never blocks — callers must be prepared to do the
/// work themselves (the parallel driver always drains its own unit queue).
/// This makes the pool deadlock-free under arbitrary nesting: no task ever
/// waits for pool capacity.
class TaskPool {
 public:
  /// The shared pool (max(2, hardware_concurrency - 1) helpers, created on
  /// first use, never destroyed). Shared by all parallel queries in the
  /// process, including those running on QueryService worker threads.
  static TaskPool* Global();

  explicit TaskPool(int threads);
  ~TaskPool();

  /// Hands `fn` to an idle helper. Returns false — without running or
  /// retaining `fn` — when every helper is busy or claimed.
  bool TrySubmit(std::function<void()> fn);

  int threads() const { return static_cast<int>(threads_.size()); }

 private:
  void Loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  int idle_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Executes an eligible compiled plan with up to `parallelism` concurrent
/// partitions. Requires: `query.parallel.eligible`, `parallelism > 1`, and
/// a context with the execution guard already installed (the engine's
/// ScopedGuard). Returns true when it handled the execution — `*result` and
/// `*stats` are complete, including the case where it decided at runtime
/// (too few partitions, non-node scan output) to finish serially on the
/// driver evaluator (counted in ExecStats::parallel_fallbacks). Returns
/// false only on static ineligibility, in which case nothing was evaluated
/// and the caller must run the normal serial path.
bool TryExecuteParallel(const CompiledQuery& query, DynamicContext* ctx,
                        const ExecOptions& options, int parallelism,
                        ExecStats* stats, Result<Sequence>* result);

}  // namespace xqc

#endif  // XQC_RUNTIME_PARALLEL_H_
