#include "src/opt/parallel_infer.h"

#include <vector>

namespace xqc {
namespace {

bool ContainsKind(const Op& op, OpKind k) {
  if (op.kind == k) return true;
  for (const OpPtr& d : op.deps) {
    if (d && ContainsKind(*d, k)) return true;
  }
  for (const OpPtr& i : op.inputs) {
    if (i && ContainsKind(*i, k)) return true;
  }
  for (const OrderSpecOp& s : op.specs) {
    if (s.key && ContainsKind(*s.key, k)) return true;
  }
  return false;
}

bool IsCollectionCall(const Op& op) {
  if (op.kind != OpKind::kCall || op.name != Symbol("fn:collection")) {
    return false;
  }
  // The URI argument is evaluated once by the driver, outside any tuple
  // scope — it must not read IN.
  return !FreeIn(op);
}

/// Walks a TreeJoin* chain down to its base; returns the base and appends
/// the joins outermost-first.
const Op* WalkTreeJoins(const Op* op, std::vector<const Op*>* joins) {
  while (op->kind == OpKind::kTreeJoin) {
    joins->push_back(op);
    op = op->inputs[0].get();
  }
  return op;
}

bool DownwardAxis(Axis a) {
  return a == Axis::kChild || a == Axis::kDescendant ||
         a == Axis::kDescendantOrSelf;
}

}  // namespace

void AnalyzeParallel(CompiledQuery* query) {
  ParallelPlanInfo info;
  const Op* plan = query->plan.get();
  if (plan == nullptr) {
    info.reason = "empty plan";
    query->parallel = std::move(info);
    return;
  }

  if (ContainsKind(*plan, OpKind::kSerialize)) {
    info.reason = "plan serializes (fn:put): side-effect order";
    query->parallel = std::move(info);
    return;
  }
  for (const auto& [name, fn] : query->functions) {
    if (fn.plan && ContainsKind(*fn.plan, OpKind::kSerialize)) {
      info.reason = "a user function serializes (fn:put)";
      query->parallel = std::move(info);
      return;
    }
  }

  // Peel the shape-B spine, if present: MapToItem{r}(Select{p}*(
  // MapFromItem{f}(...))). Everything peeled is pointwise.
  const Op* base = plan;
  if (base->kind == OpKind::kMapToItem) {
    const Op* spine = base->inputs[0].get();
    while (spine->kind == OpKind::kSelect) spine = spine->inputs[0].get();
    if (spine->kind != OpKind::kMapFromItem) {
      info.reason = "tuple spine is not Select*/MapFromItem (order-sensitive "
                    "operator between scan and root)";
      query->parallel = std::move(info);
      return;
    }
    base = spine->inputs[0].get();
  }

  std::vector<const Op*> joins;
  const Op* source = WalkTreeJoins(base, &joins);
  if (!IsCollectionCall(*source)) {
    info.reason = "leading scan is not fn:collection";
    query->parallel = std::move(info);
    return;
  }

  info.eligible = true;
  info.source = source;
  // Intra-document range splitting: sound only for a single downward
  // TreeJoin (see header).
  if (joins.size() == 1 && DownwardAxis(joins[0]->axis)) {
    info.range_split = joins[0];
  }
  query->parallel = std::move(info);
}

}  // namespace xqc
