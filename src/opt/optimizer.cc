#include "src/opt/optimizer.h"

#include <set>

namespace xqc {
namespace {

/// Collects every symbol used anywhere in a plan (field names, parameters)
/// so freshly generated index/null fields cannot collide.
void CollectSymbols(const Op& op, std::set<Symbol>* out) {
  out->insert(op.name);
  for (Symbol f : op.fields) out->insert(f);
  for (Symbol f : op.fields2) out->insert(f);
  for (const OpPtr& d : op.deps) CollectSymbols(*d, out);
  for (const OpPtr& i : op.inputs) CollectSymbols(*i, out);
  for (const OrderSpecOp& s : op.specs) CollectSymbols(*s.key, out);
}

/// Collects fields read via FieldAccess anywhere in the plan.
void CollectAccessedFields(const Op& op, std::set<Symbol>* out) {
  if (op.kind == OpKind::kFieldAccess) out->insert(op.name);
  for (const OpPtr& d : op.deps) CollectAccessedFields(*d, out);
  for (const OpPtr& i : op.inputs) CollectAccessedFields(*i, out);
  for (const OrderSpecOp& s : op.specs) CollectAccessedFields(*s.key, out);
}

class Rewriter {
 public:
  explicit Rewriter(const Op& root, OptimizerStats* stats) : stats_(stats) {
    CollectSymbols(root, &used_);
  }

  /// One bottom-up pass; sets changed_ when any rule fires.
  OpPtr Pass(OpPtr op) {
    for (OpPtr& d : op->deps) d = Pass(std::move(d));
    for (OpPtr& i : op->inputs) i = Pass(std::move(i));
    for (OrderSpecOp& s : op->specs) s.key = Pass(std::move(s.key));
    // Apply rules at this node until none fires.
    for (int guard = 0; guard < 64; guard++) {
      OpPtr next = Apply(op);
      if (next == nullptr) break;
      changed_ = true;
      op = std::move(next);
    }
    return op;
  }

  bool changed() const { return changed_; }
  void reset_changed() { changed_ = false; }

 private:
  Symbol Fresh(const char* base) {
    for (int n = 1;; n++) {
      Symbol s(std::string(base) + std::to_string(n));
      if (used_.insert(s).second) return s;
    }
  }

  void Count(int OptimizerStats::* field) {
    if (stats_ != nullptr) (stats_->*field)++;
  }

  /// Tries every rule at `op`; returns the replacement or null.
  OpPtr Apply(const OpPtr& op) {
    if (OpPtr r = FusePathStep(op)) return r;
    if (OpPtr r = CollapseDescendantStep(op)) return r;
    if (OpPtr r = RemoveMap(op)) return r;
    if (OpPtr r = InsertGroupBy(op)) return r;
    if (OpPtr r = MapThroughGroupBy(op)) return r;
    if (OpPtr r = RemoveDuplicateNull(op)) return r;
    if (OpPtr r = InsertProduct(op)) return r;
    if (OpPtr r = SplitSelect(op)) return r;
    if (OpPtr r = InsertJoin(op)) return r;
    if (OpPtr r = MergeSelectIntoJoin(op)) return r;
    if (OpPtr r = InsertOuterJoin(op)) return r;
    return nullptr;
  }

  // Path-step fusion: TreeJoin is set-at-a-time (Section 3), so the
  // normalized per-context-node FLWOR of a path step
  //   fs:distinct-docorder(
  //     MapToItem{TreeJoin...(IN#q)}(MapFromItem{[q:IN]}(X)))
  // (optionally with a single-tuple MapConcat around the MapFromItem) is
  // exactly TreeJoin...(X): TreeJoin already returns distinct nodes in
  // document order. This is what turns compiled paths into the inlined
  // (IN#p)/name/text() navigation chains shown in the paper's plans.
  OpPtr FusePathStep(const OpPtr& op) {
    if (op->kind == OpKind::kCall &&
        op->name == Symbol("fs:distinct-docorder") &&
        op->inputs.size() == 1 &&
        op->inputs[0]->kind == OpKind::kTreeJoin) {
      return op->inputs[0];  // ddo(TreeJoin(X)) => TreeJoin(X)
    }
    if (op->kind != OpKind::kCall ||
        op->name != Symbol("fs:distinct-docorder") || op->inputs.size() != 1 ||
        op->inputs[0]->kind != OpKind::kMapToItem) {
      return nullptr;
    }
    const OpPtr& map = op->inputs[0];
    // Source: MapFromItem{[q:IN]}(X), possibly under a single-tuple
    // MapConcat (input IN or ([])).
    const Op* src = map->inputs[0].get();
    if (src->kind == OpKind::kMapConcat &&
        (src->inputs[0]->kind == OpKind::kIn ||
         src->inputs[0]->kind == OpKind::kEmptyTuples)) {
      src = src->deps[0].get();
    }
    if (src->kind != OpKind::kMapFromItem ||
        src->deps[0]->kind != OpKind::kTupleConstruct ||
        src->deps[0]->fields.size() != 1 ||
        src->deps[0]->inputs[0]->kind != OpKind::kIn) {
      return nullptr;
    }
    Symbol q = src->deps[0]->fields[0];
    const OpPtr& x = src->inputs[0];
    // Dependent: a non-empty chain of TreeJoins over IN#q.
    std::vector<const Op*> chain;
    const Op* cur = map->deps[0].get();
    while (cur->kind == OpKind::kTreeJoin) {
      chain.push_back(cur);
      cur = cur->inputs[0].get();
    }
    if (chain.empty() || cur->kind != OpKind::kFieldAccess ||
        cur->name != q || cur->inputs[0]->kind != OpKind::kIn) {
      return nullptr;
    }
    Count(&OptimizerStats::fuse_path_step);
    OpPtr rebuilt = x;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      OpPtr tj = std::make_shared<Op>(**it);
      tj->inputs = {std::move(rebuilt)};
      rebuilt = std::move(tj);
    }
    return rebuilt;
  }

  // '//' collapse: TreeJoin[child::T](TreeJoin[descendant-or-self::node()]
  // (X)) => TreeJoin[descendant::T](X) — avoids materializing every node.
  OpPtr CollapseDescendantStep(const OpPtr& op) {
    if (op->kind != OpKind::kTreeJoin || op->axis != Axis::kChild) {
      return nullptr;
    }
    const OpPtr& inner = op->inputs[0];
    if (inner->kind != OpKind::kTreeJoin ||
        inner->axis != Axis::kDescendantOrSelf ||
        inner->ntest.kind != ItemTest::Kind::kAnyNode) {
      return nullptr;
    }
    Count(&OptimizerStats::collapse_descendant);
    OpPtr tj = std::make_shared<Op>(*op);
    tj->axis = Axis::kDescendant;
    tj->inputs = {inner->inputs[0]};
    return tj;
  }

  // (remove map): MapConcat{Op1}([]) => Op1.
  OpPtr RemoveMap(const OpPtr& op) {
    if (op->kind != OpKind::kMapConcat) return nullptr;
    if (op->inputs[0]->kind != OpKind::kEmptyTuples) return nullptr;
    Count(&OptimizerStats::remove_map);
    return op->deps[0];
  }

  // (insert product): MapConcat{Op1}(Op2) => Product(Op2, Op1) when Op1 is
  // independent of IN.
  OpPtr InsertProduct(const OpPtr& op) {
    if (op->kind != OpKind::kMapConcat) return nullptr;
    if (op->inputs[0]->kind == OpKind::kEmptyTuples) return nullptr;
    if (FreeIn(*op->deps[0])) return nullptr;
    // Keep single-tuple deps (let bindings of independent expressions) as
    // maps: turning them into products buys nothing.
    if (op->deps[0]->kind == OpKind::kTupleConstruct) return nullptr;
    Count(&OptimizerStats::insert_product);
    return OpProduct(op->inputs[0], op->deps[0]);
  }

  // Predicate split: Select{op:and(P,Q)}(X) => Select{P}(Select{Q}(X)).
  OpPtr SplitSelect(const OpPtr& op) {
    if (op->kind != OpKind::kSelect) return nullptr;
    const Op& pred = *op->deps[0];
    if (pred.kind != OpKind::kCall || pred.name != Symbol("op:and") ||
        pred.inputs.size() != 2) {
      return nullptr;
    }
    Count(&OptimizerStats::split_select);
    return OpSelect(pred.inputs[0],
                    OpSelect(pred.inputs[1], op->inputs[0]));
  }

  // (insert join): Select{Op1}(Product(Op2,Op3)) => Join{Op1}(Op2,Op3).
  OpPtr InsertJoin(const OpPtr& op) {
    if (op->kind != OpKind::kSelect) return nullptr;
    if (op->inputs[0]->kind != OpKind::kProduct) return nullptr;
    Count(&OptimizerStats::insert_join);
    return OpJoin(op->deps[0], op->inputs[0]->inputs[0],
                  op->inputs[0]->inputs[1]);
  }

  // Residual-predicate merge: Select{P}(Join{Q}(A,B)) => Join{P and Q}(A,B)
  // so a multi-predicate join reaches the physical operator in one piece
  // (the extension Section 6 mentions) and (insert outer-join) can fire.
  OpPtr MergeSelectIntoJoin(const OpPtr& op) {
    if (op->kind != OpKind::kSelect) return nullptr;
    if (op->inputs[0]->kind != OpKind::kJoin) return nullptr;
    const OpPtr& join = op->inputs[0];
    Count(&OptimizerStats::insert_join);
    OpPtr both = OpCall(Symbol("op:and"), {op->deps[0], join->deps[0]});
    return OpJoin(std::move(both), join->inputs[0], join->inputs[1]);
  }

  static bool ContainsSelect(const Op& op) {
    if (op.kind == OpKind::kSelect || op.kind == OpKind::kJoin) return true;
    for (const OpPtr& d : op.deps) {
      if (ContainsSelect(*d)) return true;
    }
    for (const OpPtr& i : op.inputs) {
      if (ContainsSelect(*i)) return true;
    }
    return false;
  }

  /// Decomposes `plan` as a chain of unary item operators over a MapToItem:
  /// returns the MapToItem node and rebuilds the chain over a fresh IN leaf
  /// (the post-grouping operator). Null if the shape does not match.
  static const Op* FindMapToItemChain(const OpPtr& plan, OpPtr* chain_over_in) {
    // Unary item operators admissible in the chain: single-input calls,
    // type operators, tree joins — anything with exactly one input and no
    // IN-rebinding dependents.
    const Op* cur = plan.get();
    std::vector<const Op*> chain;
    while (true) {
      if (cur->kind == OpKind::kMapToItem) break;
      bool unary_item = (cur->kind == OpKind::kCall ||
                         cur->kind == OpKind::kTypeAssert ||
                         cur->kind == OpKind::kCast ||
                         cur->kind == OpKind::kTreeJoin ||
                         cur->kind == OpKind::kValidate ||
                         cur->kind == OpKind::kTypeMatches) &&
                        cur->inputs.size() == 1 && cur->deps.empty();
      if (!unary_item) return nullptr;
      chain.push_back(cur);
      cur = cur->inputs[0].get();
    }
    // Rebuild the chain with IN replacing the MapToItem result.
    OpPtr rebuilt = OpIn();
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      OpPtr node = std::make_shared<Op>(**it);
      node->inputs = {std::move(rebuilt)};
      rebuilt = std::move(node);
    }
    *chain_over_in = std::move(rebuilt);
    return cur;
  }

  // (insert group-by): a MapConcat whose dependent is a unary tuple
  // constructor over an item-operator chain ending in a correlated
  // MapToItem becomes a trivial GroupBy (the paper's key observation).
  OpPtr InsertGroupBy(const OpPtr& op) {
    if (op->kind != OpKind::kMapConcat) return nullptr;
    const OpPtr& dep = op->deps[0];
    if (dep->kind != OpKind::kTupleConstruct || dep->fields.size() != 1) {
      return nullptr;
    }
    OpPtr post;
    const Op* map_to_item = FindMapToItemChain(dep->inputs[0], &post);
    if (map_to_item == nullptr) return nullptr;
    const OpPtr& op2 = map_to_item->deps[0];    // per-item operator
    const OpPtr& op3 = map_to_item->inputs[0];  // nested tuple stream
    if (!FreeIn(*op3)) return nullptr;          // only unnest correlated streams
    // Heuristic guard: unnesting pays off when the nested stream filters
    // (a where clause / predicate that can become a join); plain correlated
    // paths are cheaper evaluated directly.
    if (!ContainsSelect(*op3)) return nullptr;
    Count(&OptimizerStats::insert_group_by);
    Symbol null_field = Fresh("null");
    OpPtr gb = OpGroupBy(dep->fields[0], {}, {null_field}, std::move(post),
                         op2, OpOMap(null_field, op3));
    return OpMapConcat(std::move(gb), op->inputs[0]);
  }

  // (map through group-by).
  OpPtr MapThroughGroupBy(const OpPtr& op) {
    if (op->kind != OpKind::kMapConcat) return nullptr;
    const OpPtr& dep = op->deps[0];
    if (dep->kind != OpKind::kGroupBy) return nullptr;
    Count(&OptimizerStats::map_through_group_by);
    Symbol ind = Fresh("index");
    Symbol null_field = Fresh("null");
    std::vector<Symbol> inds = dep->fields;
    inds.push_back(ind);
    std::vector<Symbol> nulls = dep->fields2;
    nulls.push_back(null_field);
    return OpGroupBy(
        dep->name, std::move(inds), std::move(nulls), dep->deps[0],
        dep->deps[1],
        OpOMapConcat(null_field, dep->inputs[0],
                     OpMapIndex(ind, op->inputs[0])));
  }

  // (remove duplicate null), applied in GroupBy context so the dropped
  // null field also leaves the GroupBy's null list.
  OpPtr RemoveDuplicateNull(const OpPtr& op) {
    if (op->kind != OpKind::kGroupBy) return nullptr;
    const OpPtr& input = op->inputs[0];
    if (input->kind != OpKind::kOMapConcat) return nullptr;
    const OpPtr& inner = input->deps[0];
    if (inner->kind != OpKind::kOMap) return nullptr;
    Count(&OptimizerStats::remove_duplicate_null);
    std::vector<Symbol> nulls;
    for (Symbol n : op->fields2) {
      if (n != inner->name) nulls.push_back(n);
    }
    return OpGroupBy(op->name, op->fields, std::move(nulls), op->deps[0],
                     op->deps[1],
                     OpOMapConcat(input->name, inner->inputs[0],
                                  input->inputs[0]));
  }

  // (insert outer-join): OMapConcat[n]{Join{P}(IN,B)}(A) =>
  // LOuterJoin[n]{P}(A,B).
  OpPtr InsertOuterJoin(const OpPtr& op) {
    if (op->kind != OpKind::kOMapConcat) return nullptr;
    const OpPtr& dep = op->deps[0];
    if (dep->kind != OpKind::kJoin) return nullptr;
    if (dep->inputs[0]->kind != OpKind::kIn) return nullptr;
    if (FreeIn(*dep->inputs[1])) return nullptr;
    Count(&OptimizerStats::insert_outer_join);
    return OpLOuterJoin(op->name, dep->deps[0], op->inputs[0],
                        dep->inputs[1]);
  }

  std::set<Symbol> used_;
  OptimizerStats* stats_;
  bool changed_ = false;
};

/// Final pass: MapIndex[q] => MapIndexStep[q] when q is never read via
/// FieldAccess (it only keys a GroupBy), matching the paper's final plan P2.
OpPtr IndexToIndexStep(OpPtr op, const std::set<Symbol>& accessed,
                       OptimizerStats* stats) {
  for (OpPtr& d : op->deps) d = IndexToIndexStep(std::move(d), accessed, stats);
  for (OpPtr& i : op->inputs) {
    i = IndexToIndexStep(std::move(i), accessed, stats);
  }
  for (OrderSpecOp& s : op->specs) {
    s.key = IndexToIndexStep(std::move(s.key), accessed, stats);
  }
  if (op->kind == OpKind::kMapIndex && accessed.count(op->name) == 0) {
    op->kind = OpKind::kMapIndexStep;
    if (stats != nullptr) stats->index_to_index_step++;
  }
  return op;
}

}  // namespace

OpPtr OptimizePlan(OpPtr plan, OptimizerStats* stats) {
  Rewriter rw(*plan, stats);
  for (int pass = 0; pass < 64; pass++) {
    rw.reset_changed();
    plan = rw.Pass(std::move(plan));
    if (!rw.changed()) break;
  }
  std::set<Symbol> accessed;
  CollectAccessedFields(*plan, &accessed);
  plan = IndexToIndexStep(std::move(plan), accessed, stats);
  return plan;
}

void OptimizeQuery(CompiledQuery* query, OptimizerStats* stats) {
  query->plan = OptimizePlan(std::move(query->plan), stats);
  for (auto& [name, fn] : query->functions) {
    fn.plan = OptimizePlan(std::move(fn.plan), stats);
  }
  for (auto& [name, plan] : query->globals) {
    if (plan != nullptr) plan = OptimizePlan(std::move(plan), stats);
  }
}

}  // namespace xqc
