// Distinct-doc-order inference: annotates every kTreeJoin in a compiled
// query with the cheapest statically sound way to discharge its
// distinct-doc-order postcondition (Op::ddo, consumed by the evaluator).
//
// The pass runs a bottom-up abstract interpretation over plans with a small
// ordering lattice per operator output:
//   singleton   at most one item
//   ddo         distinct nodes, document order
//   no_overlap  no result node is an ancestor of another
//   same_depth  all result nodes have equal tree depth
// Sources: Parse / fn:doc / fn:root / constructors are singletons,
// fs:distinct-docorder establishes ddo, type assertions pass properties
// through. Transitions capture the classic structural-join facts, e.g.
// child/attribute/descendant steps from non-overlapping ordered inputs
// emit ordered distinct output (DdoMode::kSkip), and a parent step from a
// same-depth ordered input emits ordered output whose duplicates are
// adjacent (DdoMode::kDedup — a linear pass replaces the sort).
#ifndef XQC_OPT_DDO_INFER_H_
#define XQC_OPT_DDO_INFER_H_

#include "src/algebra/op.h"
#include "src/compile/compiler.h"

namespace xqc {

/// Output-ordering facts for one operator (all-false = unknown).
struct DdoProps {
  bool singleton = false;
  bool ddo = false;
  bool no_overlap = false;
  bool same_depth = false;
};

struct DdoStats {
  int skip = 0;   // TreeJoins annotated kSkip
  int dedup = 0;  // TreeJoins annotated kDedup
  int sort = 0;   // TreeJoins left at kSort
};

/// Annotates every kTreeJoin reachable from `op` and returns the inferred
/// properties of `op`'s own output.
DdoProps AnnotateDdoPlan(Op* op, DdoStats* stats = nullptr);

/// Annotates the main plan, all function bodies, and global initializers.
void AnnotateDdoQuery(CompiledQuery* query, DdoStats* stats = nullptr);

}  // namespace xqc

#endif  // XQC_OPT_DDO_INFER_H_
