// Conservative eligibility analysis for intra-query parallelism
// (DESIGN.md "Intra-query parallelism").
//
// A plan is *partitionable* when its leading scan draws from
// Call[fn:collection] and everything between that scan and the plan root is
// per-item / per-tuple (pointwise), so that running the plan over each
// member document independently and concatenating the results in collection
// ordinal order is byte-identical to the serial run. Two shapes qualify:
//
//   (A)  TreeJoin* ( Call[fn:collection] )
//        — a path expression over the collection. Sound for ANY TreeJoin
//        chain: every axis stays inside its member tree, and
//        ResolveCollection guarantees ordinal-increasing interval blocks,
//        so the serial DDO sort over the union equals the concatenation of
//        the per-document DDO sorts.
//
//   (B)  MapToItem{r} ( Select{p}* ( MapFromItem{f} ( shape A ) ) )
//        — the compiled `for $x in collection(...)>path< where .. return ..`
//        spine. Select and the boundary maps are pointwise, so the tuple
//        stream partitions exactly like the item stream feeding it.
//        Positional constructs (at-clauses, positional predicates) compile
//        to MapIndex / MapIndexStep on the spine and therefore fail the
//        shape test — exactly the order-sensitive cases that must not be
//        split.
//
// Additionally the fn:collection argument must not depend on IN, and the
// whole query (including user functions) must not serialize (fn:put) —
// side-effect order would otherwise become schedule-dependent.
//
// Intra-document range splitting (partitioning one large document by
// pre-order ranges) is sound only when the chain contains exactly ONE
// TreeJoin with a downward axis: its output is a DDO set of nodes of one
// tree, so filtering by disjoint increasing `start` ranges partitions the
// output. With two or more TreeJoins the later joins would DDO-sort across
// nodes produced from different ranges, breaking concat = serial.
#ifndef XQC_OPT_PARALLEL_INFER_H_
#define XQC_OPT_PARALLEL_INFER_H_

#include "src/compile/compiler.h"

namespace xqc {

/// Fills `query->parallel`. Call after AnnotateDdoQuery (the pass only
/// reads the plan; it stores aliasing Op pointers into the info).
void AnalyzeParallel(CompiledQuery* query);

}  // namespace xqc

#endif  // XQC_OPT_PARALLEL_INFER_H_
