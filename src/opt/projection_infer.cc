#include "src/opt/projection_infer.h"

#include <set>

namespace xqc {
namespace {

/// An abstract value: a downward path from a root document variable.
/// `path` uses ProjectTree syntax and may end in "//" (a pending
/// descendant-or-self step awaiting a name test).
struct PathValue {
  Symbol root;
  std::string path;
};

using PathSet = std::vector<PathValue>;

class Analyzer {
 public:
  ProjectionAnalysis Run(const Query& q) {
    for (const FunctionDecl& f : q.functions) {
      user_functions_.insert(f.name);
    }
    // Function bodies and prolog initializers may navigate global document
    // variables too; parameters are opaque.
    for (const FunctionDecl& f : q.functions) {
      Env saved = env_;
      for (const auto& [pname, ptype] : f.params) {
        env_[pname] = {};  // opaque
      }
      RecordEnd(Analyze(*f.body));
      env_ = saved;
    }
    for (const VarDecl& v : q.variables) {
      if (v.expr != nullptr) {
        PathSet pv = Analyze(*v.expr);
        env_[v.name] = pv;  // a prolog variable may hold a path value
      } else {
        // External variable: a fresh potential document root.
        env_[v.name] = {PathValue{v.name, ""}};
      }
    }
    RecordEnd(Analyze(*q.body));

    ProjectionAnalysis out;
    out.projectable = ok_;
    if (!ok_) return out;
    for (const auto& [root, paths] : needed_) {
      if (whole_.count(root) > 0) continue;  // needs the entire document
      std::vector<std::string> list(paths.begin(), paths.end());
      out.paths_by_var[root] = std::move(list);
    }
    return out;
  }

 private:
  using Env = std::map<Symbol, PathSet>;

  void Fail() { ok_ = false; }

  /// Keep the whole subtree at each path end.
  void RecordEnd(const PathSet& pv) {
    for (const PathValue& p : pv) {
      std::string path = p.path;
      if (path.size() >= 2 && path.compare(path.size() - 2, 2, "//") == 0) {
        path.resize(path.size() - 2);  // d-o-s end: keep the parent subtree
      }
      if (path.empty()) {
        whole_.insert(p.root);
        needed_[p.root];  // ensure the root is known
      } else {
        needed_[p.root].insert(path);
      }
    }
  }

  static std::string ExtendName(const std::string& path, bool descendant,
                                const std::string& name) {
    if (path.size() >= 2 && path.compare(path.size() - 2, 2, "//") == 0) {
      return path + name;  // pending '//' absorbs this step
    }
    if (descendant) return path + "//" + name;
    if (path.empty()) return name;
    return path + "/" + name;
  }

  /// Extends paths by one axis step; empty result means the step's value is
  /// not path-trackable (ends were recorded or the analysis failed).
  PathSet ExtendStep(const PathSet& base, const Expr& step) {
    PathSet out;
    switch (step.axis) {
      case Axis::kSelf:
        return base;
      case Axis::kChild:
      case Axis::kDescendant: {
        bool desc = step.axis == Axis::kDescendant;
        switch (step.node_test.kind) {
          case ItemTest::Kind::kElement: {
            std::string name = step.node_test.name.empty()
                                   ? "*"
                                   : step.node_test.name.str();
            for (const PathValue& p : base) {
              out.push_back({p.root, ExtendName(p.path, desc, name)});
            }
            return out;
          }
          default:
            // text()/comment()/node()/... : keep the base subtree.
            RecordEnd(base);
            return {};
        }
      }
      case Axis::kDescendantOrSelf:
        if (step.node_test.kind == ItemTest::Kind::kAnyNode) {
          for (const PathValue& p : base) {
            std::string path = p.path;
            if (path.size() < 2 ||
                path.compare(path.size() - 2, 2, "//") != 0) {
              path += "//";
            }
            out.push_back({p.root, path});
          }
          return out;
        }
        RecordEnd(base);
        return {};
      case Axis::kAttribute: {
        std::string name =
            step.node_test.name.empty() ? "*" : step.node_test.name.str();
        for (const PathValue& p : base) {
          std::string path = p.path;
          if (path.size() >= 2 && path.compare(path.size() - 2, 2, "//") == 0) {
            // '//@x' — keep the parent subtree instead (ProjectTree's
            // attribute steps are name-anchored).
            RecordEnd({p});
            continue;
          }
          out.push_back({p.root, path.empty() ? "@" + name
                                              : path + "/@" + name});
        }
        return out;
      }
      default:
        // Upward or sideways navigation escapes any downward projection.
        Fail();
        return {};
    }
  }

  PathSet Analyze(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kEmptySeq:
        return {};
      case ExprKind::kVarRef: {
        auto it = env_.find(e.name);
        if (it != env_.end()) return it->second;
        // Free variable: a potential externally-bound document root.
        env_[e.name] = {PathValue{e.name, ""}};
        return env_[e.name];
      }
      case ExprKind::kContextItem:
        return context_;
      case ExprKind::kPath: {
        PathSet base = Analyze(*e.children[0]);
        PathSet saved = context_;
        context_ = std::move(base);
        PathSet out = Analyze(*e.children[1]);
        context_ = std::move(saved);
        return out;
      }
      case ExprKind::kAxisStep: {
        PathSet out = ExtendStep(context_, e);
        // Predicates see the step's result as their context.
        if (!e.children.empty()) {
          PathSet saved = context_;
          context_ = out;
          for (const ExprPtr& pred : e.children) {
            RecordEnd(Analyze(*pred));
          }
          context_ = std::move(saved);
        }
        return out;
      }
      case ExprKind::kFilter: {
        PathSet base = Analyze(*e.children[0]);
        PathSet saved = context_;
        context_ = base;
        RecordEnd(Analyze(*e.children[1]));
        context_ = std::move(saved);
        return base;
      }
      case ExprKind::kFLWOR:
      case ExprKind::kQuantified: {
        Env saved = env_;
        for (const Clause& c : e.clauses) {
          switch (c.kind) {
            case Clause::Kind::kFor:
            case Clause::Kind::kLet: {
              PathSet v = Analyze(*c.expr);
              env_[c.var] = std::move(v);
              if (!c.pos_var.empty()) env_[c.pos_var] = {};
              break;
            }
            case Clause::Kind::kWhere:
              RecordEnd(Analyze(*c.expr));
              break;
            case Clause::Kind::kOrderBy:
              for (const Clause::OrderSpec& s : c.specs) {
                RecordEnd(Analyze(*s.key));
              }
              break;
          }
        }
        PathSet out = e.ret != nullptr ? Analyze(*e.ret) : PathSet{};
        env_ = std::move(saved);
        if (e.kind == ExprKind::kQuantified) {
          RecordEnd(out);
          return {};
        }
        return out;
      }
      case ExprKind::kTypeswitch: {
        PathSet input = Analyze(*e.children[0]);
        PathSet out;
        for (const TypeswitchCase& c : e.cases) {
          Env saved = env_;
          if (!c.var.empty()) env_[c.var] = input;
          PathSet body = Analyze(*c.body);
          out.insert(out.end(), body.begin(), body.end());
          env_ = std::move(saved);
        }
        return out;
      }
      case ExprKind::kIf: {
        RecordEnd(Analyze(*e.children[0]));
        PathSet a = Analyze(*e.children[1]);
        PathSet b = Analyze(*e.children[2]);
        a.insert(a.end(), b.begin(), b.end());
        return a;
      }
      case ExprKind::kSequence:
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kExcept: {
        PathSet out;
        for (const ExprPtr& c : e.children) {
          PathSet v = Analyze(*c);
          out.insert(out.end(), v.begin(), v.end());
        }
        return out;
      }
      case ExprKind::kFunctionCall: {
        const std::string& name = e.name.str();
        bool escapes_upward = name == "root" || name == "fn:root" ||
                              name == "doc" || name == "fn:doc" ||
                              name == "document" || name == "fn:document";
        if (name == "doc" || name == "fn:doc" || name == "document" ||
            name == "fn:document") {
          // fn:doc roots are not variable-keyed; give up on projecting
          // anything reached through them (but variables stay fine) —
          // unless a path value flows in, nothing to do.
          for (const ExprPtr& a : e.children) RecordEnd(Analyze(*a));
          return {};
        }
        if (escapes_upward) {
          Fail();
          return {};
        }
        bool is_user = user_functions_.count(e.name) > 0 ||
                       (name.rfind("local:", 0) == 0);
        for (const ExprPtr& a : e.children) {
          PathSet v = Analyze(*a);
          if (is_user && !v.empty()) {
            // A node at a projected path escapes into a function body that
            // might navigate upward from it.
            Fail();
          }
          RecordEnd(v);
        }
        return {};
      }
      default: {
        // Comparisons, arithmetic, constructors, validate, casts: analyze
        // every child; any path value consumed here needs its subtree.
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) RecordEnd(Analyze(*c));
        }
        if (e.name_expr != nullptr) RecordEnd(Analyze(*e.name_expr));
        if (e.ret != nullptr) RecordEnd(Analyze(*e.ret));
        for (const Clause& c : e.clauses) {
          if (c.expr != nullptr) RecordEnd(Analyze(*c.expr));
        }
        return {};
      }
    }
  }

  bool ok_ = true;
  Env env_;
  PathSet context_;
  std::map<Symbol, std::set<std::string>> needed_;
  std::set<Symbol> whole_;
  std::set<Symbol> user_functions_;
};

}  // namespace

ProjectionAnalysis InferProjectionPaths(const Query& parsed) {
  Analyzer a;
  return a.Run(parsed);
}

}  // namespace xqc
