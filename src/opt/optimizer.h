// Logical optimization (Section 5): the Figure 5 rewritings.
//
// Standard rules:
//   (remove map)      MapConcat{Op1}([])                      => Op1
//   (insert product)  MapConcat{Op1}(Op2)                     => Product(Op2,Op1)
//                       when Op1 independent of IN
//   (insert join)     Select{Op1}(Product(Op2,Op3))           => Join{Op1}(Op2,Op3)
// New rules (the paper's contribution):
//   (insert group-by)
//     MapConcat{[x: C(MapToItem{Op2}(Op3))]}(Op0)
//       => MapConcat{GroupBy[x,[],[null]]{C(IN)}{Op2}(OMap[null](Op3))}(Op0)
//     where C is a chain of unary item operators and Op3 is correlated
//     (free in IN) — the unary tuple constructor is a trivial GroupBy.
//   (map through group-by)
//     MapConcat{GroupBy[x,inds,nulls]{P}{Q}(R)}(S)
//       => GroupBy[x,inds+ind1,nulls+null1]{P}{Q}
//            (OMapConcat[null1]{R}(MapIndex[ind1](S)))
//   (remove duplicate null)
//     GroupBy[...,nulls]{..}(OMapConcat[n1]{OMap[n2](X)}(Y))
//       => GroupBy[...,nulls-n2]{..}(OMapConcat[n1]{X}(Y))
//   (insert outer-join)
//     OMapConcat[n]{Join{P}(IN,B)}(A) => LOuterJoin[n]{P}(A,B)
// Supporting rules:
//   Select{op:and(P,Q)}(X)  => Select{P}(Select{Q}(X))   (predicate split)
//   MapIndex[q] => MapIndexStep[q] when q is only used as a grouping index
#ifndef XQC_OPT_OPTIMIZER_H_
#define XQC_OPT_OPTIMIZER_H_

#include "src/algebra/op.h"
#include "src/compile/compiler.h"

namespace xqc {

struct OptimizerStats {
  int remove_map = 0;
  int insert_product = 0;
  int insert_join = 0;
  int insert_group_by = 0;
  int map_through_group_by = 0;
  int remove_duplicate_null = 0;
  int insert_outer_join = 0;
  int split_select = 0;
  int index_to_index_step = 0;
  int fuse_path_step = 0;
  int collapse_descendant = 0;
};

/// Rewrites one plan to fixpoint. `stats` (optional) counts rule firings.
OpPtr OptimizePlan(OpPtr plan, OptimizerStats* stats = nullptr);

/// Optimizes the main plan, all function bodies, and global initializers.
void OptimizeQuery(CompiledQuery* query, OptimizerStats* stats = nullptr);

}  // namespace xqc

#endif  // XQC_OPT_OPTIMIZER_H_
