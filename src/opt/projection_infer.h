// Static projection-path inference (the analysis behind TreeProject).
//
// The paper's Table 1 includes TreeProject[paths] and cites Marian &
// Siméon's document projection; the missing piece is computing the paths a
// query needs. This module analyses a parsed (surface) query and infers,
// per document variable, a set of projection paths such that evaluating the
// query over the projected documents provably returns the same result.
//
// The analysis is conservative: any construct whose data needs cannot be
// bounded by downward paths — parent/ancestor/sibling/following axes,
// fn:root, rooted paths ("/a"), or node values escaping into user-defined
// functions — makes the whole query non-projectable.
#ifndef XQC_OPT_PROJECTION_INFER_H_
#define XQC_OPT_PROJECTION_INFER_H_

#include <map>
#include <string>
#include <vector>

#include "src/xquery/ast.h"

namespace xqc {

struct ProjectionAnalysis {
  /// False when the query may need data outside any downward projection.
  bool projectable = false;
  /// Projection paths (ProjectTree syntax) per free document variable.
  /// A variable that is never navigated gets no entry.
  std::map<Symbol, std::vector<std::string>> paths_by_var;
};

/// Analyses a PARSED query (before normalization — the surface AST keeps
/// paths first-class, which is what the analysis walks).
ProjectionAnalysis InferProjectionPaths(const Query& parsed);

}  // namespace xqc

#endif  // XQC_OPT_PROJECTION_INFER_H_
