// Static join-key type analysis (Section 6: "static type analysis can
// improve our algorithm by reducing the number of entries that must be
// stored. If, for instance, we can infer statically that both operands are
// integers, we can build a key directly on the integer value...").
//
// InferJoinKeyClass classifies what fn:data(key) can produce, looking only
// at the key plan's structure. The classes are guarantees:
//  - kNumeric: every value is xs:integer/decimal/float/double (or a dynamic
//    error) — arithmetic results, counts, numeric literals, numeric casts;
//  - kString:  every value is xs:string/xs:anyURI — string functions and
//    literals;
//  - kUntyped: every value is xdt:untypedAtomic — atomized nodes from
//    TreeJoin navigation, PROVIDED no schema is in scope (validation is the
//    only source of type annotations; see DynamicContext contract);
//  - kGeneral: anything else / unknown.
//
// The evaluator combines the two sides' classes into a specialized key
// mode per fs:convert-operand (Table 2): untyped×untyped and
// untyped×string compare as strings, numeric×numeric and untyped×numeric
// as doubles — one hash entry per key instead of the general enumeration.
#ifndef XQC_OPT_KEY_CLASS_H_
#define XQC_OPT_KEY_CLASS_H_

#include "src/algebra/op.h"

namespace xqc {

enum class KeyClass : uint8_t {
  kGeneral,
  kUntyped,
  kString,
  kNumeric,
};

const char* KeyClassName(KeyClass c);

/// Classifies the atomized values a join-key plan can produce.
/// `schema_in_scope` disables the untyped guarantee for navigation results
/// (validated nodes may carry typed annotations).
KeyClass InferJoinKeyClass(const Op& key, bool schema_in_scope);

/// Specialized key representations (see joins.h KeyMode usage).
enum class KeyMode : uint8_t {
  kGeneralKeys,  // promoteToSimpleTypes enumeration + string bridge
  kStringKeys,   // one (xs:string, raw string) entry per key value
  kDoubleKeys,   // one (xs:double, canonical) entry; unparseable -> none
  kNoMatch,      // statically incompatible sides: the join is empty
};

/// Combines two sides' key classes into a key mode per Table 2.
KeyMode CombineKeyClasses(KeyClass left, KeyClass right);

}  // namespace xqc

#endif  // XQC_OPT_KEY_CLASS_H_
