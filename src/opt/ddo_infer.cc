#include "src/opt/ddo_infer.h"

namespace xqc {
namespace {

DdoProps Bottom() { return {}; }

DdoProps AllTrue() { return {true, true, true, true}; }

DdoProps Meet(const DdoProps& a, const DdoProps& b) {
  return {a.singleton && b.singleton, a.ddo && b.ddo,
          a.no_overlap && b.no_overlap, a.same_depth && b.same_depth};
}

/// The DdoMode a TreeJoin needs given its input's properties.
DdoMode ModeFor(Axis axis, const DdoProps& in) {
  if (in.singleton) return DdoMode::kSkip;  // one node: every axis is ordered
  switch (axis) {
    case Axis::kSelf:
      // A filter: any distinct ordered input stays distinct and ordered.
      return in.ddo ? DdoMode::kSkip : DdoMode::kSort;
    case Axis::kChild:
    case Axis::kAttribute:
      // Child/attribute blocks of interval-disjoint ordered nodes are
      // pairwise disjoint and appear in input order.
      return in.ddo && in.no_overlap ? DdoMode::kSkip : DdoMode::kSort;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      // Subtree blocks of interval-disjoint ordered nodes likewise.
      return in.ddo && in.no_overlap ? DdoMode::kSkip : DdoMode::kSort;
    case Axis::kParent:
      // Parents of a same-depth ordered input are ordered, and any
      // duplicates are adjacent (a node between two children of p at the
      // same depth is itself a child of p).
      return in.ddo && in.same_depth ? DdoMode::kDedup : DdoMode::kSort;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
    case Axis::kFollowing:
    case Axis::kPreceding:
      // Sound only for singletons (handled above); results of distinct
      // input nodes interleave arbitrarily.
      return DdoMode::kSort;
  }
  return DdoMode::kSort;
}

/// Output properties of a TreeJoin once its postcondition is established
/// (after the mode above ran — so ddo holds unconditionally).
DdoProps StepOutput(Axis axis, const ItemTest& test, const DdoProps& in) {
  DdoProps out;
  out.ddo = true;
  switch (axis) {
    case Axis::kSelf:
      out.singleton = in.singleton;
      out.no_overlap = in.no_overlap;
      out.same_depth = in.same_depth;
      break;
    case Axis::kParent:
      out.singleton = in.singleton;
      out.no_overlap = in.same_depth;  // distinct same-depth parents
      out.same_depth = in.same_depth;
      break;
    case Axis::kChild:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      // Siblings never contain each other; children of same-depth nodes
      // share a depth.
      out.no_overlap = true;
      out.same_depth = in.same_depth || in.singleton;
      break;
    case Axis::kAttribute:
      out.no_overlap = true;
      out.same_depth = in.same_depth || in.singleton;
      // attribute::name yields at most one node per input element.
      out.singleton = in.singleton && test.kind == ItemTest::Kind::kAttribute &&
                      !test.name.empty();
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowing:
    case Axis::kPreceding:
      // Results may contain ancestor/descendant pairs at mixed depths.
      break;
  }
  if (out.singleton) {
    out.no_overlap = true;
    out.same_depth = true;
  }
  return out;
}

class Annotator {
 public:
  explicit Annotator(DdoStats* stats) : stats_(stats) {}

  DdoProps Infer(Op* op) {
    // Dependent sub-plans see a context (IN) this pass does not model, but
    // their nested TreeJoins still deserve annotation.
    for (const OpPtr& d : op->deps) {
      if (op->kind != OpKind::kCond) Infer(d.get());
    }
    for (const OrderSpecOp& s : op->specs) Infer(s.key.get());
    std::vector<DdoProps> in;
    in.reserve(op->inputs.size());
    for (const OpPtr& i : op->inputs) in.push_back(Infer(i.get()));

    switch (op->kind) {
      case OpKind::kTreeJoin: {
        op->ddo = ModeFor(op->axis, in[0]);
        if (stats_ != nullptr) {
          if (op->ddo == DdoMode::kSkip) stats_->skip++;
          else if (op->ddo == DdoMode::kDedup) stats_->dedup++;
          else stats_->sort++;
        }
        return StepOutput(op->axis, op->ntest, in[0]);
      }
      // Singleton producers.
      case OpKind::kEmpty:
      case OpKind::kScalar:
      case OpKind::kElement:
      case OpKind::kAttribute:
      case OpKind::kText:
      case OpKind::kComment:
      case OpKind::kPI:
      case OpKind::kDocumentNode:
      case OpKind::kParse:
      case OpKind::kCastable:
      case OpKind::kCast:
      case OpKind::kTypeMatches:
      case OpKind::kMapSome:
      case OpKind::kMapEvery:
        return AllTrue();
      // Property-preserving wrappers.
      case OpKind::kTypeAssert:
      case OpKind::kValidate:
      case OpKind::kTreeProject:
      case OpKind::kSerialize:
        return in.empty() ? Bottom() : in.back();
      case OpKind::kSequence:
        // Concatenation keeps properties only for a single operand.
        if (in.size() == 1) return in[0];
        if (in.empty()) return AllTrue();
        return Bottom();
      case OpKind::kCond: {
        // deps are the two branches; input is the boolean.
        DdoProps p = AllTrue();
        for (const OpPtr& d : op->deps) p = Meet(p, Infer(d.get()));
        return p;
      }
      case OpKind::kCall: {
        if (op->name == Symbol("fn:doc") || op->name == Symbol("fn:root") ||
            op->name == Symbol("fn:exactly-one") ||
            op->name == Symbol("fn:zero-or-one")) {
          DdoProps p = AllTrue();
          // fn:root/fn:exactly-one/fn:zero-or-one select from their input.
          return p;
        }
        if (op->name == Symbol("fn:collection")) {
          // Member roots come back in ordinal order, and ResolveCollection
          // guarantees ordinal-increasing interval blocks, so the sequence
          // is already in document order: disjoint same-depth roots, sorted.
          DdoProps p = AllTrue();
          p.singleton = false;
          return p;
        }
        if (op->name == Symbol("fs:distinct-docorder")) {
          DdoProps p = in.empty() ? Bottom() : in[0];
          p.ddo = true;  // that is the function's whole contract
          return p;
        }
        return Bottom();
      }
      default:
        return Bottom();
    }
  }

 private:
  DdoStats* stats_;
};

}  // namespace

DdoProps AnnotateDdoPlan(Op* op, DdoStats* stats) {
  Annotator a(stats);
  return a.Infer(op);
}

void AnnotateDdoQuery(CompiledQuery* query, DdoStats* stats) {
  AnnotateDdoPlan(query->plan.get(), stats);
  for (auto& [name, fn] : query->functions) {
    AnnotateDdoPlan(fn.plan.get(), stats);
  }
  for (auto& [name, plan] : query->globals) {
    if (plan != nullptr) AnnotateDdoPlan(plan.get(), stats);
  }
}

}  // namespace xqc
