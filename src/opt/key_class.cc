#include "src/opt/key_class.h"

namespace xqc {

const char* KeyClassName(KeyClass c) {
  switch (c) {
    case KeyClass::kGeneral: return "general";
    case KeyClass::kUntyped: return "untyped";
    case KeyClass::kString: return "string";
    case KeyClass::kNumeric: return "numeric";
  }
  return "general";
}

namespace {

bool IsNumericFn(const std::string& n) {
  static const char* const kFns[] = {
      "op:plus", "op:minus",  "op:times",   "op:div",     "op:idiv",
      "op:mod",  "op:unary-minus", "fn:count", "fn:sum",  "fn:avg",
      "fn:number", "fn:abs", "fn:floor",   "fn:ceiling", "fn:round",
      "fn:string-length"};
  for (const char* f : kFns) {
    if (n == f) return true;
  }
  return false;
}

bool IsStringFn(const std::string& n) {
  static const char* const kFns[] = {
      "fn:string",          "fn:concat",         "fn:substring",
      "fn:substring-before", "fn:substring-after", "fn:upper-case",
      "fn:lower-case",      "fn:normalize-space", "fn:translate",
      "fn:string-join",     "fn:name",           "fn:local-name"};
  for (const char* f : kFns) {
    if (n == f) return true;
  }
  return false;
}

}  // namespace

KeyClass InferJoinKeyClass(const Op& key, bool schema_in_scope) {
  switch (key.kind) {
    case OpKind::kScalar:
      if (key.literal.is_numeric()) return KeyClass::kNumeric;
      if (key.literal.type() == AtomicType::kString) return KeyClass::kString;
      if (key.literal.type() == AtomicType::kUntypedAtomic) {
        return KeyClass::kUntyped;
      }
      return KeyClass::kGeneral;
    case OpKind::kTreeJoin:
      // Navigation yields nodes; fn:data over untyped nodes yields
      // xdt:untypedAtomic — unless a schema may have annotated them.
      return schema_in_scope ? KeyClass::kGeneral : KeyClass::kUntyped;
    case OpKind::kCast:
      if (key.stype.test.kind == ItemTest::Kind::kAtomic) {
        if (IsNumeric(key.stype.test.atomic)) return KeyClass::kNumeric;
        if (key.stype.test.atomic == AtomicType::kString) {
          return KeyClass::kString;
        }
        if (key.stype.test.atomic == AtomicType::kUntypedAtomic) {
          return KeyClass::kUntyped;
        }
      }
      return KeyClass::kGeneral;
    case OpKind::kSequence: {
      KeyClass a = InferJoinKeyClass(*key.inputs[0], schema_in_scope);
      KeyClass b = InferJoinKeyClass(*key.inputs[1], schema_in_scope);
      return a == b ? a : KeyClass::kGeneral;
    }
    case OpKind::kCond: {
      KeyClass a = InferJoinKeyClass(*key.deps[0], schema_in_scope);
      KeyClass b = InferJoinKeyClass(*key.deps[1], schema_in_scope);
      return a == b ? a : KeyClass::kGeneral;
    }
    case OpKind::kMapToItem:
      return InferJoinKeyClass(*key.deps[0], schema_in_scope);
    case OpKind::kCall: {
      const std::string& n = key.name.str();
      if (n == "fs:distinct-docorder" && key.inputs.size() == 1) {
        return InferJoinKeyClass(*key.inputs[0], schema_in_scope);
      }
      if (IsNumericFn(n)) return KeyClass::kNumeric;
      if (IsStringFn(n)) return KeyClass::kString;
      return KeyClass::kGeneral;
    }
    case OpKind::kTypeAssert:
      // The assertion guarantees the type at runtime (or errors).
      if (key.stype.test.kind == ItemTest::Kind::kAtomic) {
        if (IsNumeric(key.stype.test.atomic)) return KeyClass::kNumeric;
        if (key.stype.test.atomic == AtomicType::kString) {
          return KeyClass::kString;
        }
      }
      return InferJoinKeyClass(*key.inputs[0], schema_in_scope);
    default:
      return KeyClass::kGeneral;
  }
}

KeyMode CombineKeyClasses(KeyClass left, KeyClass right) {
  if (left == KeyClass::kGeneral || right == KeyClass::kGeneral) {
    return KeyMode::kGeneralKeys;
  }
  auto is = [&](KeyClass a, KeyClass b) {
    return (left == a && right == b) || (left == b && right == a);
  };
  // Table 2: untyped converts to the other side's type.
  if (is(KeyClass::kUntyped, KeyClass::kUntyped) ||
      is(KeyClass::kUntyped, KeyClass::kString) ||
      is(KeyClass::kString, KeyClass::kString)) {
    return KeyMode::kStringKeys;
  }
  if (is(KeyClass::kNumeric, KeyClass::kNumeric) ||
      is(KeyClass::kUntyped, KeyClass::kNumeric)) {
    return KeyMode::kDoubleKeys;
  }
  // string vs numeric: never comparable after convert-operand.
  return KeyMode::kNoMatch;
}

}  // namespace xqc
