// XMark substrate: a from-scratch, deterministic generator for auction-site
// documents structurally equivalent to the XMark benchmark's xmlgen output
// (Schmidt et al., VLDB 2002), plus the twenty XMark queries adapted to the
// supported dialect, and the schema the paper's Q8 variant assumes.
//
// Substitution note (see DESIGN.md): the original xmlgen binary and its
// Shakespeare-derived text corpus are not available offline. This generator
// reproduces the pieces the paper's evaluation exercises: element structure
// and proportions, join key distributions (every closed auction's buyer /
// seller / item reference is a uniformly drawn person / item id), keyword
// text for contains() queries, and byte-size scaling.
#ifndef XQC_XMARK_XMARK_H_
#define XQC_XMARK_XMARK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/types/schema.h"
#include "src/xml/node.h"

namespace xqc {

struct XMarkOptions {
  uint64_t seed = 42;
  /// Approximate size of the generated document in bytes.
  size_t target_bytes = 1 << 20;
};

/// Generates the auction document as XML text.
std::string GenerateXMarkXml(const XMarkOptions& options);

/// Generates and parses the auction document.
Result<NodePtr> GenerateXMarkDocument(const XMarkOptions& options);

/// The twenty XMark queries (1-based), adapted to the supported dialect.
/// Each declares `$auction` external; bind it to the document root.
const std::string& XMarkQuery(int number);

/// The Section 2 Q8 variant with schema types: one item element per person
/// with the count of validated element(*,USSeller) children among the
/// auctions they bought.
const std::string& XMarkQ8Variant();

/// The schema the Q8 variant assumes: closed_auction elements validate to
/// type Auction; seller elements with country="US" validate to USSeller
/// (deriving from Seller); price attributes/elements get decimal typing.
Schema XMarkSchema();

}  // namespace xqc

#endif  // XQC_XMARK_XMARK_H_
