#include "src/xmark/xmark.h"

#include <array>

#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

/// Deterministic 64-bit LCG (splitmix-style) — no global RNG state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

const char* const kWords[] = {
    "gold",      "silver",   "iron",    "copper",  "emerald", "quiet",
    "mighty",    "gentle",   "rapid",   "solemn",  "vintage", "modern",
    "carved",    "woven",    "painted", "antique", "rare",    "common",
    "splendid",  "humble",   "ornate",  "plain",   "bright",  "shadow",
    "mountain",  "river",    "meadow",  "harbor",  "castle",  "garden",
    "lantern",   "compass",  "anchor",  "feather", "marble",  "timber",
    "porcelain", "bronze",   "crystal", "velvet",  "linen",   "cedar",
    "amber",     "ivory",    "cobalt",  "scarlet", "indigo",  "auburn"};
constexpr size_t kNumWords = std::size(kWords);

const char* const kFirstNames[] = {"Ann",  "Bob",   "Cyd",  "Dan",  "Eve",
                                   "Finn", "Gina",  "Hugo", "Iris", "Jack",
                                   "Kira", "Liam",  "Mona", "Nils", "Okka",
                                   "Pia",  "Quinn", "Rosa", "Sven", "Tara"};
const char* const kLastNames[] = {"Smith",  "Jones",  "Garcia", "Muller",
                                  "Rossi",  "Tanaka", "Chen",   "Dubois",
                                  "Novak",  "Silva",  "Kumar",  "Haddad",
                                  "Olsen",  "Koch",   "Marino", "Weber"};
const char* const kCities[] = {"Springfield", "Riverton", "Lakewood",
                               "Hillsboro",   "Fairview", "Georgetown"};
const char* const kCountries[] = {"United States", "Germany", "Japan",
                                  "France",        "Brazil",  "India"};
const char* const kRegions[] = {"africa",   "asia",     "australia",
                                "europe",   "namerica", "samerica"};

void Sentence(Rng* rng, int words, std::string* out) {
  for (int i = 0; i < words; i++) {
    if (i > 0) out->push_back(' ');
    out->append(kWords[rng->Below(kNumWords)]);
  }
}

class Generator {
 public:
  Generator(const XMarkOptions& options) : options_(options), rng_(options.seed) {
    // Proportions follow XMark's relative entity counts; the per-MB
    // constants are calibrated so the output lands near target_bytes.
    double mb = static_cast<double>(options.target_bytes) / (1024.0 * 1024.0);
    n_categories_ = std::max<int>(4, static_cast<int>(10 * mb));
    n_items_ = std::max<int>(12, static_cast<int>(650 * mb));
    n_persons_ = std::max<int>(8, static_cast<int>(765 * mb));
    n_open_ = std::max<int>(6, static_cast<int>(360 * mb));
    n_closed_ = std::max<int>(6, static_cast<int>(290 * mb));
  }

  std::string Generate() {
    out_.reserve(options_.target_bytes + options_.target_bytes / 4);
    out_ += "<site>\n";
    Categories();
    Regions();
    People();
    OpenAuctions();
    ClosedAuctions();
    out_ += "</site>\n";
    return std::move(out_);
  }

 private:
  void Tag(const char* name, const std::string& content) {
    out_ += "<";
    out_ += name;
    out_ += ">";
    out_ += content;
    out_ += "</";
    out_ += name;
    out_ += ">";
  }

  void TextElem(const char* name, int words) {
    std::string s;
    Sentence(&rng_, words, &s);
    Tag(name, s);
  }

  void Categories() {
    out_ += "<categories>\n";
    for (int i = 0; i < n_categories_; i++) {
      out_ += "<category id=\"category" + std::to_string(i) + "\">";
      TextElem("name", 2);
      out_ += "<description>";
      TextElem("text", 12);
      out_ += "</description></category>\n";
    }
    out_ += "</categories>\n";
  }

  void Regions() {
    out_ += "<regions>\n";
    int per_region = n_items_ / static_cast<int>(std::size(kRegions));
    int item_id = 0;
    for (const char* region : kRegions) {
      out_ += "<";
      out_ += region;
      out_ += ">\n";
      for (int i = 0; i < per_region; i++, item_id++) {
        out_ += "<item id=\"item" + std::to_string(item_id) + "\">";
        Tag("location", kCountries[rng_.Below(std::size(kCountries))]);
        TextElem("name", 2);
        Tag("payment", "Cash Creditcard");
        out_ += "<description><parlist><listitem>";
        TextElem("text", 20);
        out_ += "</listitem><listitem>";
        TextElem("text", 15);
        out_ += "</listitem></parlist></description>";
        Tag("quantity", std::to_string(1 + rng_.Below(5)));
        out_ += "<incategory category=\"category" +
                std::to_string(rng_.Below(n_categories_)) + "\"/>";
        out_ += "</item>\n";
      }
      out_ += "</";
      out_ += region;
      out_ += ">\n";
    }
    out_ += "</regions>\n";
    n_items_ = item_id;  // actual count after integer division
  }

  void People() {
    out_ += "<people>\n";
    for (int i = 0; i < n_persons_; i++) {
      out_ += "<person id=\"person" + std::to_string(i) + "\">";
      std::string name = std::string(kFirstNames[rng_.Below(std::size(kFirstNames))]) +
                         " " + kLastNames[rng_.Below(std::size(kLastNames))];
      Tag("name", name);
      Tag("emailaddress", "mailto:user" + std::to_string(i) + "@example.org");
      if (rng_.Below(2) == 0) {
        Tag("phone", "+1 (" + std::to_string(100 + rng_.Below(900)) + ") " +
                         std::to_string(1000000 + rng_.Below(9000000)));
      }
      if (rng_.Below(2) == 0) {
        out_ += "<address>";
        Tag("street", std::to_string(1 + rng_.Below(99)) + " " +
                          std::string(kWords[rng_.Below(kNumWords)]) + " St");
        Tag("city", kCities[rng_.Below(std::size(kCities))]);
        Tag("country", kCountries[rng_.Below(std::size(kCountries))]);
        Tag("zipcode", std::to_string(10000 + rng_.Below(90000)));
        out_ += "</address>";
      }
      if (rng_.Below(2) == 0) {
        Tag("homepage", "http://example.org/~user" + std::to_string(i));
      }
      if (rng_.Below(4) != 0) {
        out_ += "<profile income=\"" +
                std::to_string(9000 + rng_.Below(91000)) + "\">";
        int interests = static_cast<int>(rng_.Below(4));
        for (int k = 0; k < interests; k++) {
          out_ += "<interest category=\"category" +
                  std::to_string(rng_.Below(n_categories_)) + "\"/>";
        }
        if (rng_.Below(2) == 0) Tag("education", "Graduate School");
        Tag("business", rng_.Below(2) == 0 ? "Yes" : "No");
        out_ += "</profile>";
      }
      out_ += "</person>\n";
    }
    out_ += "</people>\n";
  }

  void OpenAuctions() {
    out_ += "<open_auctions>\n";
    for (int i = 0; i < n_open_; i++) {
      out_ += "<open_auction id=\"open_auction" + std::to_string(i) + "\">";
      int initial = static_cast<int>(1 + rng_.Below(200));
      Tag("initial", std::to_string(initial) + "." +
                         std::to_string(rng_.Below(100)));
      Tag("reserve", std::to_string(initial * 2));
      int bidders = static_cast<int>(1 + rng_.Below(5));
      int current = initial;
      for (int b = 0; b < bidders; b++) {
        out_ += "<bidder>";
        Tag("date", Date());
        Tag("time", "12:" + std::to_string(10 + rng_.Below(50)) + ":00");
        out_ += "<personref person=\"person" +
                std::to_string(rng_.Below(n_persons_)) + "\"/>";
        int inc = static_cast<int>(1 + rng_.Below(20));
        current += inc;
        Tag("increase", std::to_string(inc) + ".00");
        out_ += "</bidder>";
      }
      Tag("current", std::to_string(current) + ".00");
      out_ += "<itemref item=\"item" + std::to_string(rng_.Below(n_items_)) + "\"/>";
      out_ += "<seller person=\"person" + std::to_string(rng_.Below(n_persons_)) + "\"/>";
      out_ += "<annotation><description>";
      TextElem("text", 10);
      out_ += "</description></annotation>";
      Tag("quantity", "1");
      Tag("type", "Regular");
      out_ += "<interval>";
      Tag("start", Date());
      Tag("end", Date());
      out_ += "</interval></open_auction>\n";
    }
    out_ += "</open_auctions>\n";
  }

  void ClosedAuctions() {
    out_ += "<closed_auctions>\n";
    for (int i = 0; i < n_closed_; i++) {
      out_ += "<closed_auction>";
      // The Q8-variant schema keys USSeller on country="US".
      bool us = rng_.Below(3) == 0;
      out_ += "<seller person=\"person" +
              std::to_string(rng_.Below(n_persons_)) + "\" country=\"" +
              (us ? "US" : "DE") + "\"/>";
      out_ += "<buyer person=\"person" +
              std::to_string(rng_.Below(n_persons_)) + "\"/>";
      out_ += "<itemref item=\"item" + std::to_string(rng_.Below(n_items_)) + "\"/>";
      Tag("price", std::to_string(1 + rng_.Below(300)) + "." +
                       std::to_string(10 + rng_.Below(90)));
      Tag("date", Date());
      Tag("quantity", "1");
      Tag("type", "Regular");
      out_ += "<annotation><description>";
      TextElem("text", 14);
      out_ += "</description></annotation></closed_auction>\n";
    }
    out_ += "</closed_auctions>\n";
  }

  std::string Date() {
    return std::to_string(1998 + rng_.Below(8)) + "-" +
           std::to_string(1 + rng_.Below(12)) + "-" +
           std::to_string(1 + rng_.Below(28));
  }

  XMarkOptions options_;
  Rng rng_;
  std::string out_;
  int n_categories_, n_items_, n_persons_, n_open_, n_closed_;
};

}  // namespace

std::string GenerateXMarkXml(const XMarkOptions& options) {
  Generator g(options);
  return g.Generate();
}

Result<NodePtr> GenerateXMarkDocument(const XMarkOptions& options) {
  return ParseXml(GenerateXMarkXml(options));
}

const std::string& XMarkQuery(int number) {
  static const std::array<std::string, 21>* kQueries = [] {
    auto* q = new std::array<std::string, 21>();
    const std::string decl = "declare variable $auction external; ";
    // Q1: exact-match lookup.
    (*q)[1] = decl +
        "for $b in $auction/site/people/person[@id = \"person0\"] "
        "return $b/name/text()";
    // Q2: positional access inside open auctions.
    (*q)[2] = decl +
        "for $b in $auction/site/open_auctions/open_auction "
        "return <increase>{$b/bidder[1]/increase/text()}</increase>";
    // Q3: first vs last bidder comparison.
    (*q)[3] = decl +
        "for $b in $auction/site/open_auctions/open_auction "
        "where zero-or-one($b/bidder[1]/increase/text()) "
        "return <increase first=\"{$b/bidder[1]/increase/text()}\" "
        "last=\"{$b/bidder[last()]/increase/text()}\"/>";
    // Q4: document-order comparison of bidders.
    (*q)[4] = decl +
        "for $b in $auction/site/open_auctions/open_auction "
        "where some $pr1 in $b/bidder/personref[@person = \"person20\"], "
        "           $pr2 in $b/bidder/personref[@person = \"person51\"] "
        "      satisfies $pr1 << $pr2 "
        "return <history>{$b/reserve/text()}</history>";
    // Q5: aggregate with value predicate.
    (*q)[5] = decl +
        "count(for $i in $auction/site/closed_auctions/closed_auction "
        "where $i/price >= 40 return $i/price)";
    // Q6: descendant counting per region.
    (*q)[6] = decl +
        "for $b in $auction/site/regions return count($b//item)";
    // Q7: counting three descendant kinds.
    (*q)[7] = decl +
        "for $p in $auction/site "
        "return count($p//description) + count($p//annotation) + "
        "count($p//emailaddress)";
    // Q8: the classic 2-way value join (persons x closed auctions).
    (*q)[8] = decl +
        "for $p in $auction/site/people/person "
        "let $a := for $t in $auction/site/closed_auctions/closed_auction "
        "          where $t/buyer/@person = $p/@id "
        "          return $t "
        "return <item person=\"{$p/name/text()}\">{count($a)}</item>";
    // Q9: 3-way join (persons x closed auctions x european items).
    (*q)[9] = decl +
        "for $p in $auction/site/people/person "
        "let $a := for $t in $auction/site/closed_auctions/closed_auction "
        "          let $n := for $t2 in $auction/site/regions/europe/item "
        "                    where $t/itemref/@item = $t2/@id "
        "                    return $t2 "
        "          where $p/@id = $t/buyer/@person "
        "          return <item>{$n/name/text()}</item> "
        "return <person name=\"{$p/name/text()}\">{$a}</person>";
    // Q10: grouping by interest category (large reconstruction join).
    (*q)[10] = decl +
        "for $i in distinct-values($auction/site/people/person/profile/"
        "interest/@category) "
        "let $p := for $t in $auction/site/people/person "
        "          where $t/profile/interest/@category = $i "
        "          return <personne>"
        "<statistiques><sexe>{$t/profile/gender/text()}</sexe>"
        "<age>{$t/profile/age/text()}</age>"
        "<education>{$t/profile/education/text()}</education>"
        "<revenu>{fn:data($t/profile/@income)}</revenu></statistiques>"
        "<coordonnees><nom>{$t/name/text()}</nom>"
        "<courrier>{$t/emailaddress/text()}</courrier></coordonnees>"
        "</personne> "
        "return <categorie>{<id>{$i}</id>, $p}</categorie>";
    // Q11: value-based inequality join (income vs initial price).
    (*q)[11] = decl +
        "for $p in $auction/site/people/person "
        "let $l := for $i in $auction/site/open_auctions/open_auction/initial "
        "          where $p/profile/@income > 5000 * number($i) "
        "          return $i "
        "return <items name=\"{$p/name/text()}\">{count($l)}</items>";
    // Q12: Q11 restricted to high incomes.
    (*q)[12] = decl +
        "for $p in $auction/site/people/person "
        "let $l := for $i in $auction/site/open_auctions/open_auction/initial "
        "          where $p/profile/@income > 5000 * number($i) "
        "          return $i "
        "where $p/profile/@income > 50000 "
        "return <items person=\"{$p/name/text()}\">{count($l)}</items>";
    // Q13: reconstruction of australian items.
    (*q)[13] = decl +
        "for $i in $auction/site/regions/australia/item "
        "return <item name=\"{$i/name/text()}\">{$i/description}</item>";
    // Q14: full-text-ish scan with contains().
    (*q)[14] = decl +
        "for $i in $auction/site//item "
        "where contains(string($i/description), \"gold\") "
        "return $i/name/text()";
    // Q15: a long path expression.
    (*q)[15] = decl +
        "for $a in $auction/site/closed_auctions/closed_auction/annotation/"
        "description/text "
        "return <text>{$a/text()}</text>";
    // Q16: a long path with an existence test.
    (*q)[16] = decl +
        "for $a in $auction/site/closed_auctions/closed_auction "
        "where exists($a/annotation/description/text/text()) "
        "return <person id=\"{$a/seller/@person}\"/>";
    // Q17: missing-element test.
    (*q)[17] = decl +
        "for $p in $auction/site/people/person "
        "where empty($p/homepage/text()) "
        "return <person name=\"{$p/name/text()}\"/>";
    // Q18: user-defined function application.
    (*q)[18] = decl +
        "declare function local:convert($v) { 2.20371 * number($v) }; "
        "for $i in $auction/site/open_auctions/open_auction "
        "return local:convert(zero-or-one($i/reserve/text()))";
    // Q19: order by.
    (*q)[19] = decl +
        "for $b in $auction/site/regions//item "
        "let $k := $b/name/text() "
        "order by zero-or-one($b/location) ascending "
        "return <item name=\"{$k}\">{$b/location/text()}</item>";
    // Q20: income bracket counts.
    (*q)[20] = decl +
        "<result>"
        "<preferred>{count($auction/site/people/person/profile["
        "@income >= 100000])}</preferred>"
        "<standard>{count($auction/site/people/person/profile["
        "@income < 100000][@income >= 30000])}</standard>"
        "<challenge>{count($auction/site/people/person/profile["
        "@income < 30000])}</challenge>"
        "<na>{count(for $p in $auction/site/people/person "
        "where empty($p/profile/@income) return $p)}</na>"
        "</result>";
    return q;
  }();
  return (*kQueries)[static_cast<size_t>(number)];
}

const std::string& XMarkQ8Variant() {
  // The running example of Section 2 of the paper: uses schema validation
  // and the element(*,Type) tests inside the nested FLWOR block.
  static const std::string* kQuery = new std::string(
      "declare variable $auction external; "
      "for $p in $auction//person "
      "let $a as element(*,Auction)* := "
      "  for $t in $auction//closed_auction "
      "  where $t/buyer/@person = $p/@id "
      "  return validate { $t } "
      "return <item person=\"{$p/name/text()}\">"
      "{count($a/element(*,USSeller))}</item>");
  return *kQuery;
}

Schema XMarkSchema() {
  Schema s;
  s.AddElementRule(Symbol("closed_auction"), Symbol("Auction"));
  s.AddElementRule(Symbol("seller"), Symbol("Seller"));
  s.AddElementRule(Symbol("seller"), Symbol("USSeller"), Symbol("country"),
                   "US");
  s.AddDerivation(Symbol("USSeller"), Symbol("Seller"));
  s.AddAttributeRule(Symbol(), Symbol("income"), AtomicType::kDecimal);
  s.AddElementRule(Symbol("price"), Symbol("xs:decimal"));
  return s;
}

}  // namespace xqc
