#include "src/clio/clio.h"

#include <array>

#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

const char* const kTitleWords[] = {
    "Efficient", "Algebraic",  "Streaming", "Adaptive", "Holistic",
    "Queries",   "Indexes",    "Joins",     "Views",    "Schemas",
    "XML",       "Relational", "Semistructured", "Data", "Processing",
    "Optimization", "Evaluation", "Compilation", "Integration", "Mapping"};

}  // namespace

std::string GenerateDblpXml(const ClioOptions& options) {
  Rng rng(options.seed);
  double kb = static_cast<double>(options.target_bytes) / 1024.0;
  int n_papers = std::max<int>(10, static_cast<int>(kb * 2.4));
  int n_authors = std::max<int>(6, n_papers / 4);
  int n_confs = std::max<int>(3, n_papers / 25);
  int n_publishers = std::max<int>(2, n_confs / 3);

  std::string out;
  out.reserve(options.target_bytes + options.target_bytes / 4);
  out += "<dblp>\n";

  auto author_name = [&](int i) {
    return "A. Author" + std::to_string(i);
  };
  auto conf_name = [&](int i) { return "CONF" + std::to_string(i); };
  auto publisher_name = [&](int i) { return "Press" + std::to_string(i); };

  for (int i = 0; i < n_authors; i++) {
    out += "<authorinfo><name>" + author_name(i) + "</name><affiliation>Univ" +
           std::to_string(rng.Below(40)) + "</affiliation></authorinfo>\n";
  }
  for (int i = 0; i < n_publishers; i++) {
    out += "<publisher><pname>" + publisher_name(i) + "</pname><city>City" +
           std::to_string(rng.Below(20)) + "</city></publisher>\n";
  }
  // One proceedings entry per (conference, year in 1998..2005).
  for (int c = 0; c < n_confs; c++) {
    for (int y = 1998; y <= 2005; y++) {
      out += "<proceedings key=\"proc-" + std::to_string(c) + "-" +
             std::to_string(y) + "\"><booktitle>" + conf_name(c) +
             "</booktitle><year>" + std::to_string(y) + "</year><pubname>" +
             publisher_name(c % n_publishers) + "</pubname></proceedings>\n";
    }
  }
  for (int i = 0; i < n_papers; i++) {
    out += "<inproceedings key=\"paper" + std::to_string(i) + "\">";
    int na = static_cast<int>(1 + rng.Below(3));
    for (int a = 0; a < na; a++) {
      out += "<author>" + author_name(static_cast<int>(rng.Below(n_authors))) +
             "</author>";
    }
    out += "<title>";
    for (int w = 0; w < 6; w++) {
      if (w > 0) out += " ";
      out += kTitleWords[rng.Below(std::size(kTitleWords))];
    }
    out += "</title>";
    int p0 = static_cast<int>(1 + rng.Below(400));
    out += "<pages>" + std::to_string(p0) + "-" + std::to_string(p0 + 12) +
           "</pages>";
    out += "<year>" + std::to_string(1998 + rng.Below(8)) + "</year>";
    out += "<booktitle>" + conf_name(static_cast<int>(rng.Below(n_confs))) +
           "</booktitle>";
    int ncites = static_cast<int>(rng.Below(3));
    for (int k = 0; k < ncites; k++) {
      out += "<cite ref=\"paper" + std::to_string(rng.Below(n_papers)) +
             "\"/>";
    }
    out += "<url>http://dblp.example.org/paper" + std::to_string(i) +
           "</url></inproceedings>\n";
  }
  out += "</dblp>\n";
  return out;
}

Result<NodePtr> GenerateDblpDocument(const ClioOptions& options) {
  return ParseXml(GenerateDblpXml(options));
}

const std::string& ClioQuery(int level) {
  static const std::array<std::string, 5>* kQueries = [] {
    auto* q = new std::array<std::string, 5>();
    const std::string decl = "declare variable $dblp external; ";

    // N2: doubly nested FLWOR, single join (author name), in the style of
    // the Figure 1 Clio output — the nested block sits directly inside the
    // element constructor.
    (*q)[2] = decl +
        "<authorDB>{ "
        "for $a in $dblp/dblp/authorinfo return "
        "<author><name>{$a/name/text()}</name>"
        "<pubs>{ for $p in $dblp/dblp/inproceedings "
        "        where $p/author = $a/name/text() "
        "        return <pub><title>{$p/title/text()}</title>"
        "<year>{$p/year/text()}</year></pub> }</pubs>"
        "</author> }</authorDB>";

    // N3: triple-nested FLWOR, 3-way join
    // (authorinfo x inproceedings x proceedings).
    (*q)[3] = decl +
        "<authorDB>{ "
        "for $a in $dblp/dblp/authorinfo return "
        "<author><name>{$a/name/text()}</name>"
        "<pubs>{ for $p in $dblp/dblp/inproceedings "
        "        where $p/author = $a/name/text() "
        "        return <pub><title>{$p/title/text()}</title>"
        "<venue>{ for $pr in $dblp/dblp/proceedings "
        "         where $pr/booktitle = $p/booktitle "
        "           and $pr/year = $p/year "
        "         return <conf>{$pr/booktitle/text()}</conf> }</venue>"
        "</pub> }</pubs>"
        "</author> }</authorDB>";

    // N4: quadruple-nested FLWOR, 6-way join (authorinfo x inproceedings x
    // proceedings x publisher x cited inproceedings x co-author infos).
    (*q)[4] = decl +
        "<authorDB>{ "
        "for $a in $dblp/dblp/authorinfo return "
        "<author><name>{$a/name/text()}</name>"
        "<pubs>{ for $p in $dblp/dblp/inproceedings "
        "        where $p/author = $a/name/text() "
        "        return <pub><title>{$p/title/text()}</title>"
        "<venue>{ for $pr in $dblp/dblp/proceedings "
        "         where $pr/booktitle = $p/booktitle "
        "           and $pr/year = $p/year "
        "         return <conf name=\"{$pr/booktitle/text()}\">"
        "{ for $pub in $dblp/dblp/publisher "
        "  where $pub/pname = $pr/pubname "
        "  return <press>{$pub/pname/text()}</press> }</conf> }</venue>"
        "<cites>{ for $c in $dblp/dblp/inproceedings "
        "         where $c/@key = $p/cite/@ref "
        "         return <ctitle>{$c/title/text()}</ctitle> }</cites>"
        "<coauthors>{ for $co in $dblp/dblp/authorinfo "
        "             where $co/name = $p/author "
        "             return <co>{$co/affiliation/text()}</co> }</coauthors>"
        "</pub> }</pubs>"
        "</author> }</authorDB>";
    return q;
  }();
  return (*kQueries)[static_cast<size_t>(level)];
}

}  // namespace xqc
