// Clio substrate: synthetic DBLP-like documents and the schema-mapping
// queries of the paper's Table 5 evaluation.
//
// Substitution note (see DESIGN.md): Clio is proprietary IBM tooling; its
// generated queries are exemplified in the paper's Figure 1 (nested FLWOR
// blocks inside element constructors, joining on author names). We generate
// a DBLP-like source document and mapping queries with the documented
// structure: N2 is a doubly nested FLWOR with a single join, N3 a triple
// nested FLWOR with a 3-way join, N4 a quadruple-nested FLWOR with a 6-way
// join — applied to a ~250 KB document as in the paper.
#ifndef XQC_CLIO_CLIO_H_
#define XQC_CLIO_CLIO_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/xml/node.h"

namespace xqc {

struct ClioOptions {
  uint64_t seed = 7;
  /// Approximate size of the generated source document in bytes.
  size_t target_bytes = 250 * 1024;
};

/// Generates the DBLP-like source document as XML text. Structure:
/// dblp/(inproceedings | proceedings | publisher | authorinfo)* with
/// author-name, booktitle, publisher-name, and citation-key join keys.
std::string GenerateDblpXml(const ClioOptions& options);

/// Generates and parses the source document.
Result<NodePtr> GenerateDblpDocument(const ClioOptions& options);

/// Mapping query N2/N3/N4 (the argument is the nesting level, 2..4).
/// Each declares `$dblp` external; bind it to the document root.
const std::string& ClioQuery(int level);

}  // namespace xqc

#endif  // XQC_CLIO_CLIO_H_
