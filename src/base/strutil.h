// Small string helpers shared across the engine.
#ifndef XQC_BASE_STRUTIL_H_
#define XQC_BASE_STRUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xqc {

/// True iff `c` is XML whitespace (space, tab, CR, LF).
inline bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Strips leading and trailing XML whitespace.
std::string_view TrimXmlSpace(std::string_view s);

/// True iff `s` consists entirely of XML whitespace (including empty).
bool IsAllXmlSpace(std::string_view s);

/// Collapses internal whitespace runs to single spaces and trims
/// (fn:normalize-space semantics).
std::string NormalizeSpace(std::string_view s);

/// Formats a double per (simplified) XQuery serialization rules:
/// integral values in [-1e15,1e15] print without exponent or decimal point
/// beyond ".0"? — XQuery prints 3 for xs:double 3? (No: "3".) We print the
/// shortest round-trip form, with "NaN", "INF", "-INF" spellings.
std::string FormatDouble(double d);

/// Formats an int64.
std::string FormatInt(int64_t v);

/// Parses a decimal/double literal. Returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);
bool ParseInt(std::string_view s, int64_t* out);

/// Splits on a separator character (no trimming).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// XML-escapes text content (& < >) or attribute values (also " ).
std::string XmlEscape(std::string_view s, bool in_attribute);

/// RFC 3986 percent-decoding; malformed escapes ("%", "%2", "%GG") pass
/// through literally. Shared by DocumentStore URI normalization and the
/// HTTP request-target parser, which must agree on every input (see the
/// malformed-escape cases in store_test.cc).
std::string PercentDecode(std::string_view s);

// ---- UTF-8 codepoint helpers ------------------------------------------------
// The XQuery string model counts characters (Unicode codepoints), not
// bytes; fn:string-length / fn:substring index by codepoint. Continuation
// bytes have the form 10xxxxxx; malformed bytes count as one codepoint
// each so every walk terminates.

/// Given the byte offset `i` of a codepoint start in `s`, returns the byte
/// offset one past that codepoint (the next boundary), at most s.size().
size_t Utf8Next(std::string_view s, size_t i);

/// Number of Unicode codepoints in `s`.
size_t Utf8Length(std::string_view s);

}  // namespace xqc

#endif  // XQC_BASE_STRUTIL_H_
