#include "src/base/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace xqc {
namespace {

struct Interner {
  std::mutex mu;
  std::unordered_map<std::string_view, uint32_t> map;
  std::deque<std::string> names;  // deque: stable addresses

  Interner() {
    names.emplace_back("");
    map.emplace(std::string_view(names.back()), 0);
  }

  uint32_t Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = map.find(name);
    if (it != map.end()) return it->second;
    names.emplace_back(name);
    uint32_t id = static_cast<uint32_t>(names.size() - 1);
    map.emplace(std::string_view(names.back()), id);
    return id;
  }

  const std::string& Str(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu);
    return names[id];
  }
};

Interner& Pool() {
  static Interner* pool = new Interner();
  return *pool;
}

}  // namespace

Symbol::Symbol(std::string_view name) : id_(Pool().Intern(name)) {}

const std::string& Symbol::str() const { return Pool().Str(id_); }

}  // namespace xqc
