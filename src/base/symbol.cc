#include "src/base/symbol.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace xqc {
namespace {

// The global interner, designed for concurrent Prepare()/Execute() calls:
//
//  * Interning (write path) is sharded: the name hashes to one of kShards
//    shard maps, each with its own mutex, so unrelated interns from
//    different threads do not contend on a single lock.
//  * Symbol::str() (read path, the hot one — every serialized QName goes
//    through it) is lock-free: ids index an append-only two-level table of
//    `const std::string*` published with release stores after the string
//    is fully constructed. Entries are never moved or freed, so a loaded
//    pointer stays valid for the process lifetime.
//
// Capacity: kBlocks * kBlockSize = 16M distinct symbols; exceeding it is a
// hard abort (a plausible-only-under-attack condition — symbols are QNames,
// variable names, and field names, not data values).
class Interner {
 public:
  static constexpr size_t kShards = 16;
  static constexpr size_t kBlockSize = 4096;
  static constexpr size_t kBlocks = 4096;

  Interner() {
    // Id 0 is the empty symbol, pre-published so Str(0) needs no special
    // case and default-constructed Symbols print as "".
    uint32_t id = Intern("");
    (void)id;
  }

  uint32_t Intern(std::string_view name) {
    Shard& shard = shards_[Hash(name) % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(name);
    if (it != shard.map.end()) return it->second;
    const std::string* stored = new std::string(name);
    uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    Publish(id, stored);
    shard.map.emplace(std::string_view(*stored), id);
    return id;
  }

  const std::string& Str(uint32_t id) const {
    const std::atomic<const std::string*>* block =
        blocks_[id / kBlockSize].load(std::memory_order_acquire);
    return *block[id % kBlockSize].load(std::memory_order_acquire);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string_view, uint32_t> map;
  };

  static size_t Hash(std::string_view s) {
    return std::hash<std::string_view>()(s);
  }

  // Makes blocks_[id/kBlockSize][id%kBlockSize] point at `s`. Block
  // allocation races between shards are resolved with a CAS; the losing
  // allocation is freed.
  void Publish(uint32_t id, const std::string* s) {
    size_t b = id / kBlockSize;
    if (b >= kBlocks) abort();  // > 16M distinct symbols
    std::atomic<const std::string*>* block =
        blocks_[b].load(std::memory_order_acquire);
    if (block == nullptr) {
      auto* fresh = new std::atomic<const std::string*>[kBlockSize]();
      std::atomic<const std::string*>* expected = nullptr;
      if (blocks_[b].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel)) {
        block = fresh;
      } else {
        delete[] fresh;
        block = expected;
      }
    }
    block[id % kBlockSize].store(s, std::memory_order_release);
  }

  Shard shards_[kShards];
  std::atomic<uint32_t> next_id_{0};
  std::atomic<std::atomic<const std::string*>*> blocks_[kBlocks] = {};
};

Interner& Pool() {
  static Interner* pool = new Interner();
  return *pool;
}

}  // namespace

Symbol::Symbol(std::string_view name) : id_(Pool().Intern(name)) {}

const std::string& Symbol::str() const { return Pool().Str(id_); }

}  // namespace xqc
