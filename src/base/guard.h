// Per-query resource governance: deadlines, cooperative cancellation,
// memory budgets, output caps, and eval-step quotas.
//
// A QueryGuard is armed once per execution and consulted at cheap,
// amortized points across both engines (the tuple-algebra evaluator and
// the baseline interpreter) plus the XQuery/XML parsers. The fast path is
// a single counter decrement; every kCheckInterval steps the guard runs a
// real check (cancellation flag, wall clock, step quota). Memory is not
// hooked at the allocator: operators *account* the tuples/items/nodes they
// materialize through AccountTuples/AccountItems/AccountNodes, which map
// to byte estimates against the budget. The accounting counter is
// monotone — it tracks cumulative accounted allocation, which upper-bounds
// the true high-water mark — so `peak_memory_bytes` in ExecStats is the
// total accounted footprint, a deliberate over-approximation.
//
// Guard trips surface as Status::ResourceExhausted with vendor codes:
//
//   XQC0001  wall-clock deadline exceeded
//   XQC0002  cancelled via CancellationToken
//   XQC0003  memory budget exceeded
//   XQC0004  output-size cap exceeded
//   XQC0005  recursion depth exceeded (issued by the evaluators)
//   XQC0006  eval-step quota exceeded
//
// All limits default to 0 = unlimited; a default QueryGuard never trips.
// GuardFaultInjector lets tests deterministically trip the Nth check or
// fail the Nth accounted allocation to exercise every unwind path.
#ifndef XQC_BASE_GUARD_H_
#define XQC_BASE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/base/status.h"
#include "src/base/xqc_codes.h"

namespace xqc {

/// Per-query resource limits. 0 means unlimited.
struct GuardLimits {
  /// Wall-clock deadline, measured from QueryGuard::Arm().
  int64_t deadline_ms = 0;
  /// Budget for accounted tuple/item/node allocations (estimates; see the
  /// file comment). Trips with XQC0003.
  int64_t max_memory_bytes = 0;
  /// Cap on result items delivered to the caller. Trips with XQC0004.
  int64_t max_output_items = 0;
  /// Quota on amortized eval steps (each step ~ one operator/expression
  /// visit or one tuple pulled). Trips with XQC0006.
  int64_t max_eval_steps = 0;

  bool any() const {
    return deadline_ms > 0 || max_memory_bytes > 0 || max_output_items > 0 ||
           max_eval_steps > 0;
  }
};

/// Shared cancellation flag. Copy the token before starting the query and
/// call RequestCancel() from any thread; the running query fails with
/// XQC0002 at its next guard check. A default-constructed token is inert
/// (never cancelled, RequestCancel is a no-op).
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Creates a live token (default-constructed ones are inert).
  static CancellationToken Make() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Creates a live token that additionally observes `parent`: it reads as
  /// cancelled when either its own RequestCancel ran or the parent token
  /// was cancelled, while its own RequestCancel never touches the parent.
  /// Used by partitioned execution — the per-query abort token must fire
  /// when the caller cancels the whole query, but a partition error must
  /// only cancel the sibling partitions, never the caller's token.
  static CancellationToken MakeLinked(const CancellationToken& parent) {
    CancellationToken t = Make();
    t.parent_ = parent.flag_;
    return t;
  }

  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const {
    return (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) ||
           (parent_ != nullptr && parent_->load(std::memory_order_relaxed));
  }
  /// Whether this token was created by Make() (false for the inert
  /// default-constructed token, whose RequestCancel does nothing).
  bool live() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::shared_ptr<std::atomic<bool>> parent_;
};

/// Deterministic failure injection for tests: trip the Nth slow-path guard
/// check, or fail the Nth accounted allocation, regardless of limits.
struct GuardFaultInjector {
  /// 1-based index of the slow-path check to trip; 0 = never.
  int64_t trip_check_n = 0;
  /// Code to trip with (one of the kGuard*Code constants).
  const char* trip_code = kGuardCancelledCode;
  /// 1-based index of the Account{Memory,Items,Tuples,Nodes} call to fail
  /// with XQC0003; 0 = never.
  int64_t fail_alloc_n = 0;
};

/// The per-query guard. Not thread-safe except for the cancellation token;
/// one guard belongs to one executing query.
class QueryGuard {
 public:
  /// Approximate per-object byte costs used by the Account* helpers.
  static constexpr int64_t kItemCost = 48;
  static constexpr int64_t kTupleCost = 96;
  static constexpr int64_t kNodeCost = 160;
  /// Steps between slow-path checks. Small enough that a 50ms deadline is
  /// honored within a few ms of overshoot, large enough that the fast path
  /// dominates (a single decrement per step).
  static constexpr int64_t kCheckInterval = 256;

  QueryGuard() { Arm(); }
  explicit QueryGuard(
      const GuardLimits& limits,
      CancellationToken cancel = CancellationToken(),
      const GuardFaultInjector& injector = GuardFaultInjector())
      : limits_(limits), cancel_(std::move(cancel)), injector_(injector) {
    Arm();
  }

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// (Re)starts the deadline clock. Called by the constructor; call again
  /// to reuse a guard across executions.
  void Arm();

  /// The amortized per-step check. Fast path: one decrement and branch.
  Status Check() {
    if (--countdown_ > 0) return Status::OK();
    return SlowCheck();
  }

  /// Credits `n` steps at once — exactly equivalent to n sequential
  /// Check() calls (same steps_/checks_ totals, same slow-check cadence,
  /// so injector trips and the XQC0006 quota fire at the same logical
  /// step) but with one call. Batched iterators use this to amortize
  /// per-tuple guard traffic while keeping the tuple-at-a-time oracle's
  /// accounting bit-for-bit. n = 0 is a no-op.
  Status CheckSteps(int64_t n) {
    if (n < countdown_) {
      countdown_ -= n;
      return Status::OK();
    }
    return SlowCheckSteps(n);
  }

  /// An unamortized check, for coarse boundaries (e.g. each tuple a
  /// ResultStream delivers) where cancellation latency matters more than
  /// throughput. Does not advance the step counter.
  Status CheckNow();

  /// Charges `bytes` against the memory budget (monotone; see file
  /// comment). Returns XQC0003 when over budget or fault-injected.
  Status AccountMemory(int64_t bytes);
  Status AccountItems(int64_t n) { return AccountMemory(n * kItemCost); }
  Status AccountTuples(int64_t n) { return AccountMemory(n * kTupleCost); }
  Status AccountNodes(int64_t n) { return AccountMemory(n * kNodeCost); }

  /// Charges `n` items against the output cap. Returns XQC0004 when over.
  Status AccountOutput(int64_t n);

  void set_fault_injector(const GuardFaultInjector& fi) { injector_ = fi; }

  /// Milliseconds left until the armed deadline (clamped at 0), or -1 when
  /// no deadline is set. Lets waiting/retrying layers (DocumentStore) bound
  /// their sleeps by the caller's remaining budget.
  int64_t remaining_deadline_ms() const {
    if (!has_deadline_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline_ - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? left : 0;
  }

  const GuardLimits& limits() const { return limits_; }
  /// The token this guard watches. Partitioned execution links its
  /// per-query abort token to this, so worker guards observe the caller's
  /// cancellation even while every thread is busy inside a partition.
  const CancellationToken& cancel_token() const { return cancel_; }
  /// Slow-path checks performed (ExecStats::guard_checks).
  int64_t checks() const { return checks_; }
  /// Total accounted bytes (ExecStats::peak_memory_bytes).
  int64_t peak_memory_bytes() const { return memory_bytes_; }
  int64_t steps() const { return steps_; }
  int64_t output_items() const { return output_items_; }

 private:
  Status SlowCheck();
  Status SlowCheckSteps(int64_t n);

  GuardLimits limits_;
  CancellationToken cancel_;
  GuardFaultInjector injector_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  int64_t countdown_ = kCheckInterval;
  int64_t checks_ = 0;
  int64_t steps_ = 0;
  int64_t memory_bytes_ = 0;
  int64_t alloc_calls_ = 0;
  int64_t output_items_ = 0;
};

/// A per-thread guard with no limits and an inert cancellation token, used
/// as a fallback so evaluator hot paths can check unconditionally instead
/// of branching on "is a guard installed". Its counters are shared across
/// queries on the thread — never report stats from it.
QueryGuard* UnlimitedGuard();

}  // namespace xqc

#endif  // XQC_BASE_GUARD_H_
