// Interned symbols for QNames, variable names, and tuple field names.
// Symbol comparison is an integer compare; the engine's compiled plans use
// "direct compiled memory access" instead of string lookups — the paper
// attributes a large part of its 4x algebra speedup to exactly this.
#ifndef XQC_BASE_SYMBOL_H_
#define XQC_BASE_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace xqc {

/// An interned string. Default-constructed Symbol is the empty symbol.
class Symbol {
 public:
  Symbol() : id_(0) {}
  /// Interns `name` (idempotent) and returns its symbol.
  explicit Symbol(std::string_view name);

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }
  /// The interned spelling. The reference stays valid for process lifetime.
  const std::string& str() const;

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_;
};

}  // namespace xqc

template <>
struct std::hash<xqc::Symbol> {
  size_t operator()(xqc::Symbol s) const noexcept {
    return std::hash<uint32_t>()(s.id());
  }
};

#endif  // XQC_BASE_SYMBOL_H_
