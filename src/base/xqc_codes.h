// The consolidated XQC vendor error-code registry.
//
// Every xqc-specific (non-W3C) error code lives in this one table: the
// code string callers match on, the C++ constant naming it, what it
// means, and which layer issues it. The per-layer headers used to carry
// these as scattered string constants and comments; keeping the registry
// in one place makes "is this code taken?" a lookup instead of a grep,
// and base_test.cc asserts the table stays unique and gapless.
//
// Adding a code: append a kXqcCodeTable row AND a named constant, keep
// the numbering contiguous, and document the code in README.md's
// "XQC error codes" table.
#ifndef XQC_BASE_XQC_CODES_H_
#define XQC_BASE_XQC_CODES_H_

#include <cstddef>

namespace xqc {

/// Wall-clock deadline exceeded (GuardLimits::deadline_ms), including
/// deadlines exhausted in the service admission queue.
inline constexpr const char* kGuardTimeoutCode = "XQC0001";
/// Cancelled via CancellationToken.
inline constexpr const char* kGuardCancelledCode = "XQC0002";
/// Accounted memory budget exceeded (GuardLimits::max_memory_bytes).
inline constexpr const char* kGuardMemoryCode = "XQC0003";
/// Output-size cap exceeded (GuardLimits::max_output_items).
inline constexpr const char* kGuardOutputCode = "XQC0004";
/// Recursion depth exceeded (issued by the evaluators).
inline constexpr const char* kGuardRecursionCode = "XQC0005";
/// Eval-step quota exceeded (GuardLimits::max_eval_steps).
inline constexpr const char* kGuardStepsCode = "XQC0006";
/// QueryService admission failure: the queue stayed saturated past the
/// queue-wait timeout, the predicted queue wait exceeds the request
/// deadline, or the service is shut down.
inline constexpr const char* kServiceOverloadedCode = "XQC0007";
/// DocumentStore: a transient I/O failure persisted through the whole
/// retry budget (StatusKind::kIOError).
inline constexpr const char* kStoreRetriesExhaustedCode = "XQC0008";
/// DocumentStore: the document is quarantined — its cached
/// parse/validation failure is replayed without re-reading or re-parsing,
/// until the file changes or Invalidate(uri) is called.
inline constexpr const char* kStoreQuarantinedCode = "XQC0009";
/// QueryService: the request's tenant is over its admission quota
/// (per-tenant in-flight or queued cap), fast-failed at Submit.
inline constexpr const char* kTenantOverQuotaCode = "XQC0010";
/// DocumentStore: the circuit breaker for the document's URI prefix is
/// open after repeated transient I/O failures; the load fails immediately
/// until a half-open probe observes recovery.
inline constexpr const char* kStoreBreakerOpenCode = "XQC0011";
/// HttpServer: the service is draining (SIGTERM/SIGINT or BeginDrain) —
/// new work is refused while in-flight requests finish within their
/// deadlines. Clients should retry against another instance.
inline constexpr const char* kServiceDrainingCode = "XQC0012";
/// HttpServer: the request is malformed or oversized (bad request line,
/// header, or body framing; caps exceeded). Never retriable as-is.
inline constexpr const char* kMalformedRequestCode = "XQC0013";

/// One registry row: the wire code, its C++ constant's name, a one-line
/// meaning, and the layer that issues it.
struct XqcCodeInfo {
  const char* code;
  const char* symbol;
  const char* meaning;
  const char* origin;
};

inline constexpr XqcCodeInfo kXqcCodeTable[] = {
    {kGuardTimeoutCode, "kGuardTimeoutCode",
     "wall-clock deadline exceeded", "base/guard"},
    {kGuardCancelledCode, "kGuardCancelledCode",
     "cancelled via CancellationToken", "base/guard"},
    {kGuardMemoryCode, "kGuardMemoryCode",
     "memory budget exceeded", "base/guard"},
    {kGuardOutputCode, "kGuardOutputCode",
     "output-size cap exceeded", "base/guard"},
    {kGuardRecursionCode, "kGuardRecursionCode",
     "recursion depth exceeded", "runtime/interp evaluators"},
    {kGuardStepsCode, "kGuardStepsCode",
     "eval-step quota exceeded", "base/guard"},
    {kServiceOverloadedCode, "kServiceOverloadedCode",
     "admission queue saturated or service shut down", "service"},
    {kStoreRetriesExhaustedCode, "kStoreRetriesExhaustedCode",
     "transient I/O failure outlived the retry budget", "store"},
    {kStoreQuarantinedCode, "kStoreQuarantinedCode",
     "document quarantined; cached failure replayed", "store"},
    {kTenantOverQuotaCode, "kTenantOverQuotaCode",
     "tenant over its admission quota", "service"},
    {kStoreBreakerOpenCode, "kStoreBreakerOpenCode",
     "circuit breaker open for the URI prefix", "store"},
    {kServiceDrainingCode, "kServiceDrainingCode",
     "service draining; new work refused", "net"},
    {kMalformedRequestCode, "kMalformedRequestCode",
     "malformed or oversized HTTP request", "net"},
};

inline constexpr size_t kXqcCodeCount =
    sizeof(kXqcCodeTable) / sizeof(kXqcCodeTable[0]);

}  // namespace xqc

#endif  // XQC_BASE_XQC_CODES_H_
