#include "src/base/strutil.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xqc {

std::string_view TrimXmlSpace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && IsXmlSpace(s[b])) b++;
  while (e > b && IsXmlSpace(s[e - 1])) e--;
  return s.substr(b, e - b);
}

bool IsAllXmlSpace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlSpace(c)) return false;
  }
  return true;
}

std::string PercentDecode(std::string_view s) {
  auto hex = [](char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // suppress leading space
  for (char c : s) {
    if (IsXmlSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string FormatDouble(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
  if (d == 0.0) return std::signbit(d) ? "-0" : "0";
  // Integral values without fractional noise.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    return FormatInt(static_cast<int64_t>(d));
  }
  char buf[64];
  // Shortest round-trip representation.
  for (int prec = 15; prec <= 17; prec++) {
    snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (strtod(buf, nullptr) == d) break;
  }
  return buf;
}

std::string FormatInt(int64_t v) { return std::to_string(v); }

bool ParseDouble(std::string_view s, double* out) {
  s = TrimXmlSpace(s);
  if (s.empty()) return false;
  if (s == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (s == "INF" || s == "+INF") {
    *out = HUGE_VAL;
    return true;
  }
  if (s == "-INF") {
    *out = -HUGE_VAL;
    return true;
  }
  std::string tmp(s);
  char* end = nullptr;
  double v = strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(std::string_view s, int64_t* out) {
  s = TrimXmlSpace(s);
  if (s.empty()) return false;
  if (s[0] == '+') s.remove_prefix(1);
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string XmlEscape(std::string_view s, bool in_attribute) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (in_attribute) {
          out += "&quot;";
        } else {
          out.push_back(c);
        }
        break;
      default: out.push_back(c);
    }
  }
  return out;
}

size_t Utf8Next(std::string_view s, size_t i) {
  if (i >= s.size()) return s.size();
  i++;
  while (i < s.size() &&
         (static_cast<unsigned char>(s[i]) & 0xC0) == 0x80) {
    i++;
  }
  return i;
}

size_t Utf8Length(std::string_view s) {
  size_t n = 0;
  for (size_t i = 0; i < s.size(); i = Utf8Next(s, i)) n++;
  return n;
}

}  // namespace xqc
