// Status / Result error-handling substrate (RocksDB idiom: no exceptions
// across API boundaries). XQuery dynamic and type errors carry their W3C
// error codes (e.g. XPTY0004) in the message.
#ifndef XQC_BASE_STATUS_H_
#define XQC_BASE_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace xqc {

/// Error category. `kXQueryError` covers W3C-defined static/dynamic/type
/// errors; the W3C code (XPST0003, XPTY0004, FORG0001, ...) is the `code()`.
enum class StatusKind {
  kOk,
  kXQueryError,     // err:* static, dynamic, or type error
  kParseError,      // malformed XML or XQuery input
  kNotImplemented,  // unsupported feature
  kInternal,        // invariant violation inside the engine
  kIOError,         // file / URI access failure
  kResourceExhausted,  // a query guardrail tripped (see src/base/guard.h)
};

/// A lightweight status object. Ok statuses allocate nothing.
class Status {
 public:
  Status() : kind_(StatusKind::kOk) {}

  static Status OK() { return Status(); }
  static Status XQueryError(std::string code, std::string msg) {
    return Status(StatusKind::kXQueryError, std::move(code), std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusKind::kParseError, "XPST0003", std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusKind::kNotImplemented, "XQST0000", std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusKind::kInternal, "XQDY0000", std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusKind::kIOError, "FODC0002", std::move(msg));
  }
  /// A query guardrail tripped (deadline, cancellation, memory budget,
  /// output cap, step quota, recursion depth). `code` is one of the
  /// XQC00xx vendor codes in src/base/guard.h.
  static Status ResourceExhausted(std::string code, std::string msg) {
    return Status(StatusKind::kResourceExhausted, std::move(code),
                  std::move(msg));
  }
  /// A status with an explicit kind and code, for layers that classify
  /// errors beyond the canned factories (e.g. the document store's
  /// XQC0008 retry-exhaustion and XQC0009 quarantine-replay taxonomy).
  static Status WithCode(StatusKind kind, std::string code, std::string msg) {
    assert(kind != StatusKind::kOk && "WithCode needs a non-OK kind");
    return Status(kind, std::move(code), std::move(msg));
  }

  bool ok() const { return kind_ == StatusKind::kOk; }
  StatusKind kind() const { return kind_; }
  /// W3C error code, e.g. "XPTY0004". Empty for OK.
  const std::string& code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return "[" + code_ + "] " + message_;
  }

 private:
  Status(StatusKind kind, std::string code, std::string msg)
      : kind_(kind), code_(std::move(code)), message_(std::move(msg)) {}

  StatusKind kind_;
  std::string code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& take() {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Status> v_;
};

// Propagate a non-OK Status from an expression producing Status.
#define XQC_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::xqc::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluate an expression producing Result<T>; on error return its Status,
// otherwise bind the value to `lhs`.
#define XQC_ASSIGN_OR_RETURN(lhs, expr)       \
  auto XQC_CONCAT_(_res_, __LINE__) = (expr); \
  if (!XQC_CONCAT_(_res_, __LINE__).ok())     \
    return XQC_CONCAT_(_res_, __LINE__).status(); \
  lhs = XQC_CONCAT_(_res_, __LINE__).take()

#define XQC_CONCAT_INNER_(a, b) a##b
#define XQC_CONCAT_(a, b) XQC_CONCAT_INNER_(a, b)

}  // namespace xqc

#endif  // XQC_BASE_STATUS_H_
