// Fast non-cryptographic 64-bit hashing (the XXH64 algorithm), used by the
// persistent snapshot tier (src/store/snapshot.h) for per-section and
// whole-file checksums, and by DocumentStore as the fast content hash that
// hardens the (inode, size, mtime) staleness fingerprint against
// same-second rewrites. One implementation so a hash written into a
// snapshot file is always comparable with one computed at load time.
#ifndef XQC_BASE_HASH_H_
#define XQC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace xqc {

namespace hash_internal {

inline constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ull;
inline constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
inline constexpr uint64_t kPrime3 = 0x165667b19e3779f9ull;
inline constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ull;
inline constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ull;

inline uint64_t Rotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace hash_internal

/// XXH64 over `len` bytes with the given seed. Deterministic across
/// processes and runs (unlike std::hash), so it is safe to persist.
inline uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace hash_internal;  // NOLINT
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const unsigned char* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    p++;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace xqc

#endif  // XQC_BASE_HASH_H_
