#include "src/base/guard.h"

namespace xqc {

void QueryGuard::Arm() {
  countdown_ = kCheckInterval;
  has_deadline_ = limits_.deadline_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
}

Status QueryGuard::SlowCheck() {
  countdown_ = kCheckInterval;
  steps_ += kCheckInterval;
  return CheckNow();
}

Status QueryGuard::SlowCheckSteps(int64_t n) {
  // Mirrors n sequential Check() calls: every time the remaining credit
  // covers the countdown, a slow check fires and the countdown resets to
  // kCheckInterval; the tail is absorbed by the counter. Loop bound is
  // n / kCheckInterval — the same number of slow checks n fast-path
  // decrements would have triggered.
  while (n >= countdown_) {
    n -= countdown_;
    XQC_RETURN_IF_ERROR(SlowCheck());
  }
  countdown_ -= n;
  return Status::OK();
}

Status QueryGuard::CheckNow() {
  checks_++;
  if (injector_.trip_check_n > 0 && checks_ >= injector_.trip_check_n) {
    return Status::ResourceExhausted(injector_.trip_code,
                                     "fault injection: guard check tripped");
  }
  if (cancel_.cancelled()) {
    return Status::ResourceExhausted(kGuardCancelledCode, "query cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    return Status::ResourceExhausted(
        kGuardTimeoutCode, "query deadline of " +
                               std::to_string(limits_.deadline_ms) +
                               "ms exceeded");
  }
  if (limits_.max_eval_steps > 0 && steps_ > limits_.max_eval_steps) {
    return Status::ResourceExhausted(
        kGuardStepsCode, "eval step quota of " +
                             std::to_string(limits_.max_eval_steps) +
                             " exceeded");
  }
  return Status::OK();
}

Status QueryGuard::AccountMemory(int64_t bytes) {
  alloc_calls_++;
  memory_bytes_ += bytes;
  if (injector_.fail_alloc_n > 0 && alloc_calls_ >= injector_.fail_alloc_n) {
    return Status::ResourceExhausted(kGuardMemoryCode,
                                     "fault injection: allocation failed");
  }
  if (limits_.max_memory_bytes > 0 &&
      memory_bytes_ > limits_.max_memory_bytes) {
    return Status::ResourceExhausted(
        kGuardMemoryCode,
        "memory budget of " + std::to_string(limits_.max_memory_bytes) +
            " bytes exceeded (accounted " + std::to_string(memory_bytes_) +
            ")");
  }
  return Status::OK();
}

Status QueryGuard::AccountOutput(int64_t n) {
  output_items_ += n;
  if (limits_.max_output_items > 0 &&
      output_items_ > limits_.max_output_items) {
    return Status::ResourceExhausted(
        kGuardOutputCode, "output cap of " +
                              std::to_string(limits_.max_output_items) +
                              " items exceeded");
  }
  return Status::OK();
}

QueryGuard* UnlimitedGuard() {
  thread_local QueryGuard guard;
  return &guard;
}

}  // namespace xqc
