#include "src/compile/compiler.h"

#include <map>
#include <set>

namespace xqc {
namespace {

class Compiler {
 public:
  /// Variable scope: maps in-scope FLWOR/typeswitch variables to the tuple
  /// field that carries them (the paper's Clauses|$Var/IN#Var substitution).
  using Scope = std::map<Symbol, Symbol>;

  Result<OpPtr> Compile(const Expr& e, const Scope& scope) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return OpScalar(e.literal);
      case ExprKind::kEmptySeq:
        return OpEmpty();
      case ExprKind::kVarRef: {
        auto it = scope.find(e.name);
        if (it != scope.end()) return OpInField(it->second);
        return OpVar(e.name);  // global / function parameter
      }
      case ExprKind::kSequence: {
        // Fold the n-ary Core sequence into binary Sequence operators.
        if (e.children.empty()) return OpEmpty();
        XQC_ASSIGN_OR_RETURN(OpPtr acc, Compile(*e.children[0], scope));
        for (size_t i = 1; i < e.children.size(); i++) {
          XQC_ASSIGN_OR_RETURN(OpPtr next, Compile(*e.children[i], scope));
          OpPtr seq = MakeOp(OpKind::kSequence);
          seq->inputs = {std::move(acc), std::move(next)};
          acc = std::move(seq);
        }
        return acc;
      }
      case ExprKind::kIf: {
        XQC_ASSIGN_OR_RETURN(OpPtr c, Compile(*e.children[0], scope));
        XQC_ASSIGN_OR_RETURN(OpPtr t, Compile(*e.children[1], scope));
        XQC_ASSIGN_OR_RETURN(OpPtr f, Compile(*e.children[2], scope));
        return OpCond(std::move(t), std::move(f), std::move(c));
      }
      case ExprKind::kFLWOR: {
        // [FLWORExpr]_(IN) => Op0. The tuple stream starts from IN only
        // when the block actually references an in-scope tuple variable;
        // independent blocks (e.g. normalized paths over globals) start
        // from the ([]) table so the unnesting rewritings see them as
        // independent of IN.
        OpPtr start = (in_tuple_context_ && ReferencesScope(e, scope))
                          ? OpIn()
                          : OpEmptyTuples();
        bool saved = in_tuple_context_;
        in_tuple_context_ = true;
        Result<OpPtr> r = CompileFLWOR(e, scope, std::move(start));
        in_tuple_context_ = saved;
        return r;
      }
      case ExprKind::kQuantified: {
        bool saved = in_tuple_context_;
        in_tuple_context_ = true;
        Result<OpPtr> r = CompileQuantified(e, scope);
        in_tuple_context_ = saved;
        return r;
      }
      case ExprKind::kTypeswitch: {
        bool saved = in_tuple_context_;
        in_tuple_context_ = true;
        Result<OpPtr> r = CompileTypeswitch(e, scope);
        in_tuple_context_ = saved;
        return r;
      }
      case ExprKind::kInstanceOf: {
        XQC_ASSIGN_OR_RETURN(OpPtr in, Compile(*e.children[0], scope));
        OpPtr op = MakeOp(OpKind::kTypeMatches);
        op->stype = e.stype;
        op->inputs = {std::move(in)};
        return op;
      }
      case ExprKind::kTreatAs: {
        XQC_ASSIGN_OR_RETURN(OpPtr in, Compile(*e.children[0], scope));
        return OpTypeAssert(e.stype, std::move(in));
      }
      case ExprKind::kCastAs:
      case ExprKind::kCastableAs: {
        XQC_ASSIGN_OR_RETURN(OpPtr in, Compile(*e.children[0], scope));
        OpPtr op = MakeOp(e.kind == ExprKind::kCastAs ? OpKind::kCast
                                                      : OpKind::kCastable);
        op->stype = e.stype;
        op->inputs = {std::move(in)};
        return op;
      }
      case ExprKind::kAxisStep: {
        auto it = scope.find(Symbol("fs:dot"));
        if (it == scope.end()) {
          return Status::XQueryError("XPDY0002",
                                     "axis step with no context tuple field");
        }
        return OpTreeJoin(e.axis, e.node_test, OpInField(it->second));
      }
      case ExprKind::kFunctionCall: {
        // fn:doc maps to the algebra's Parse I/O operator.
        if ((e.name == Symbol("fn:doc") || e.name == Symbol("fn:document")) &&
            e.children.size() == 1) {
          XQC_ASSIGN_OR_RETURN(OpPtr uri, Compile(*e.children[0], scope));
          OpPtr op = MakeOp(OpKind::kParse);
          op->inputs = {std::move(uri)};
          return op;
        }
        std::vector<OpPtr> args;
        args.reserve(e.children.size());
        for (const ExprPtr& a : e.children) {
          XQC_ASSIGN_OR_RETURN(OpPtr p, Compile(*a, scope));
          args.push_back(std::move(p));
        }
        return OpCall(e.name, std::move(args));
      }
      case ExprKind::kCompElement:
      case ExprKind::kCompAttribute:
      case ExprKind::kCompText:
      case ExprKind::kCompComment:
      case ExprKind::kCompPI:
      case ExprKind::kCompDocument:
        return CompileConstructor(e, scope);
      case ExprKind::kValidate: {
        XQC_ASSIGN_OR_RETURN(OpPtr in, Compile(*e.children[0], scope));
        OpPtr op = MakeOp(OpKind::kValidate);
        op->inputs = {std::move(in)};
        return op;
      }
      default:
        return Status::Internal(
            "non-Core expression reached the algebraic compiler");
    }
  }

  bool in_tuple_context_ = false;

 private:
  /// Does the expression reference any variable currently carried in the
  /// tuple stream?
  static bool ReferencesScope(const Expr& e, const Scope& scope) {
    std::set<Symbol> free;
    CollectFreeVars(e, &free);
    for (const auto& [var, field] : scope) {
      if (free.count(var) > 0) return true;
    }
    return false;
  }

  /// Fresh tuple-field name derived from a variable name; strips the fs:
  /// prefix of compiler variables for readable plans.
  Symbol FreshField(Symbol var) {
    std::string base = var.str();
    size_t colon = base.rfind(':');
    if (colon != std::string::npos) base = base.substr(colon + 1);
    std::string name = base;
    int n = 1;
    while (!used_fields_.insert(Symbol(name)).second) {
      name = base + "_" + std::to_string(++n);
    }
    return Symbol(name);
  }

  Result<OpPtr> CompileFLWOR(const Expr& e, Scope scope, OpPtr plan) {
    for (size_t ci = 0; ci < e.clauses.size(); ci++) {
      const Clause& c = e.clauses[ci];
      switch (c.kind) {
        case Clause::Kind::kFor: {
          // (FOR)/(FORAT), Figure 2.
          XQC_ASSIGN_OR_RETURN(OpPtr op1, Compile(*c.expr, scope));
          Symbol field = FreshField(c.var);
          OpPtr item = OpIn();  // [as T]_IN
          if (c.type) item = OpTypeAssert(*c.type, std::move(item));
          OpPtr op3 = OpMapFromItem(
              OpTupleConstruct({field}, {std::move(item)}), std::move(op1));
          if (!c.pos_var.empty()) {
            Symbol pos_field = FreshField(c.pos_var);
            // `at` positions restart per prior binding. A leading for
            // clause uses the paper's (FORAT) rule — MapIndex over the
            // whole (single-tuple-rooted) stream; a non-leading one puts
            // the MapIndex inside the dependent so the numbering restarts
            // with each outer tuple.
            bool after_for = false;
            for (size_t cj = 0; cj < ci; cj++) {
              if (e.clauses[cj].kind == Clause::Kind::kFor) after_for = true;
            }
            if (after_for) {
              op3 = OpMapIndex(pos_field, std::move(op3));
              plan = OpMapConcat(std::move(op3), std::move(plan));
            } else {
              plan = OpMapConcat(std::move(op3), std::move(plan));
              plan = OpMapIndex(pos_field, std::move(plan));
            }
            scope[c.pos_var] = pos_field;
          } else {
            plan = OpMapConcat(std::move(op3), std::move(plan));
          }
          scope[c.var] = field;
          break;
        }
        case Clause::Kind::kLet: {
          // (LET), Figure 2.
          XQC_ASSIGN_OR_RETURN(OpPtr op1, Compile(*c.expr, scope));
          if (c.type) op1 = OpTypeAssert(*c.type, std::move(op1));
          Symbol field = FreshField(c.var);
          plan = OpMapConcat(OpTupleConstruct({field}, {std::move(op1)}),
                             std::move(plan));
          scope[c.var] = field;
          break;
        }
        case Clause::Kind::kWhere: {
          // (WHERE), Figure 2.
          XQC_ASSIGN_OR_RETURN(OpPtr pred, Compile(*c.expr, scope));
          plan = OpSelect(std::move(pred), std::move(plan));
          break;
        }
        case Clause::Kind::kOrderBy: {
          // (ORDERBY), Figure 2.
          OpPtr ob = MakeOp(OpKind::kOrderBy);
          for (const Clause::OrderSpec& s : c.specs) {
            OrderSpecOp spec;
            XQC_ASSIGN_OR_RETURN(spec.key, Compile(*s.key, scope));
            spec.descending = s.descending;
            spec.empty_greatest = s.empty_greatest;
            ob->specs.push_back(std::move(spec));
          }
          ob->inputs = {std::move(plan)};
          plan = std::move(ob);
          break;
        }
      }
    }
    XQC_ASSIGN_OR_RETURN(OpPtr ret, Compile(*e.ret, scope));
    return OpMapToItem(std::move(ret), std::move(plan));
  }

  Result<OpPtr> CompileQuantified(const Expr& e, Scope scope) {
    OpPtr plan = OpIn();
    for (const Clause& c : e.clauses) {
      XQC_ASSIGN_OR_RETURN(OpPtr op1, Compile(*c.expr, scope));
      Symbol field = FreshField(c.var);
      OpPtr item = OpIn();
      if (c.type) item = OpTypeAssert(*c.type, std::move(item));
      plan = OpMapConcat(
          OpMapFromItem(OpTupleConstruct({field}, {std::move(item)}),
                        std::move(op1)),
          std::move(plan));
      scope[c.var] = field;
    }
    XQC_ASSIGN_OR_RETURN(OpPtr sat, Compile(*e.ret, scope));
    OpPtr out = MakeOp(e.quant == QuantKind::kSome ? OpKind::kMapSome
                                                   : OpKind::kMapEvery);
    out->deps = {std::move(sat)};
    out->inputs = {std::move(plan)};
    return out;
  }

  Result<OpPtr> CompileTypeswitch(const Expr& e, Scope scope) {
    // Figure 3: input bound to a common tuple field, cases become a chain
    // of Cond over TypeMatches, evaluated over ([x:Op0] ++ IN).
    XQC_ASSIGN_OR_RETURN(OpPtr input, Compile(*e.children[0], scope));
    Symbol field = FreshField(e.name.empty() ? Symbol("ts") : e.name);
    scope[e.name] = field;
    for (const TypeswitchCase& c : e.cases) {
      if (!c.var.empty()) scope[c.var] = field;
    }

    // Build the Cond chain from the last (default) case backwards.
    OpPtr chain;
    for (auto it = e.cases.rbegin(); it != e.cases.rend(); ++it) {
      XQC_ASSIGN_OR_RETURN(OpPtr body, Compile(*it->body, scope));
      if (it->is_default) {
        chain = std::move(body);
        continue;
      }
      OpPtr match = MakeOp(OpKind::kTypeMatches);
      match->stype = it->type;
      match->inputs = {OpInField(field)};
      chain = OpCond(std::move(body), std::move(chain), std::move(match));
    }

    OpPtr bind = MakeOp(OpKind::kTupleConcat);
    bind->inputs = {OpTupleConstruct({field}, {std::move(input)}), OpIn()};
    return OpMapToItem(std::move(chain), std::move(bind));
  }

  Result<OpPtr> CompileConstructor(const Expr& e, const Scope& scope) {
    OpPtr content;
    for (const ExprPtr& c : e.children) {
      XQC_ASSIGN_OR_RETURN(OpPtr p, Compile(*c, scope));
      if (content == nullptr) {
        content = std::move(p);
      } else {
        OpPtr seq = MakeOp(OpKind::kSequence);
        seq->inputs = {std::move(content), std::move(p)};
        content = std::move(seq);
      }
    }
    if (content == nullptr) content = OpEmpty();

    OpKind k;
    switch (e.kind) {
      case ExprKind::kCompElement: k = OpKind::kElement; break;
      case ExprKind::kCompAttribute: k = OpKind::kAttribute; break;
      case ExprKind::kCompText: k = OpKind::kText; break;
      case ExprKind::kCompComment: k = OpKind::kComment; break;
      case ExprKind::kCompPI: k = OpKind::kPI; break;
      default: k = OpKind::kDocumentNode; break;
    }
    OpPtr op = MakeOp(k);
    op->name = e.name;
    op->inputs = {std::move(content)};
    if (e.name_expr != nullptr) {
      XQC_ASSIGN_OR_RETURN(OpPtr np, Compile(*e.name_expr, scope));
      op->inputs.push_back(std::move(np));  // computed constructor name
    }
    return op;
  }

  std::set<Symbol> used_fields_;
};

}  // namespace

Result<CompiledQuery> CompileQuery(const Query& core) {
  CompiledQuery out;
  for (const FunctionDecl& f : core.functions) {
    Compiler c;
    CompiledFunction cf;
    cf.name = f.name;
    for (const auto& [pname, ptype] : f.params) {
      cf.params.push_back(pname);
      cf.param_types.push_back(ptype);
    }
    cf.return_type = f.return_type;
    XQC_ASSIGN_OR_RETURN(cf.plan, c.Compile(*f.body, {}));
    out.functions.emplace(f.name, std::move(cf));
  }
  for (const VarDecl& v : core.variables) {
    if (v.expr == nullptr) {
      out.globals.emplace_back(v.name, nullptr);  // external
      continue;
    }
    Compiler c;
    XQC_ASSIGN_OR_RETURN(OpPtr plan, c.Compile(*v.expr, {}));
    if (v.type) plan = OpTypeAssert(*v.type, std::move(plan));
    out.globals.emplace_back(v.name, std::move(plan));
  }
  Compiler c;
  XQC_ASSIGN_OR_RETURN(out.plan, c.Compile(*core.body, {}));
  return out;
}

Result<OpPtr> CompileExpr(const ExprPtr& core) {
  Compiler c;
  return c.Compile(*core, {});
}

}  // namespace xqc
