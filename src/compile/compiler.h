// Algebraic compilation: XQuery Core -> the Table 1 algebra (Section 4).
//
// Implements the paper's inference rules: FLWOR clauses compile through the
// auxiliary judgment [Clauses]_(Op0) that threads the intermediate tuple
// plan (Figure 2: FOR / FORAT / LET / WHERE / ORDERBY), variables become
// compiled tuple-field accesses IN#q (the "direct compiled memory access"
// the paper credits for much of the algebra speedup), typeswitch compiles
// per Figure 3 into TypeMatches + Cond over a common tuple field, path
// steps become TreeJoin, and `as T` assertions become TypeAssert.
#ifndef XQC_COMPILE_COMPILER_H_
#define XQC_COMPILE_COMPILER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/algebra/op.h"
#include "src/xquery/ast.h"

namespace xqc {

/// A user-defined function compiled to a plan over Var[param] leaves.
struct CompiledFunction {
  Symbol name;
  std::vector<Symbol> params;
  std::vector<std::optional<SequenceType>> param_types;
  std::optional<SequenceType> return_type;
  OpPtr plan;
};

/// Result of the conservative intra-query parallelism eligibility pass
/// (src/opt/parallel_infer.h). Filled by AnalyzeParallel after the DDO
/// annotation pass; consumed by the parallel executor
/// (src/runtime/parallel.h). The Op pointers alias nodes owned by `plan`.
struct ParallelPlanInfo {
  /// Whether the plan can be partitioned by collection member document.
  bool eligible = false;
  /// The Call[fn:collection] op whose result the executor partitions.
  const Op* source = nullptr;
  /// The single TreeJoin over the source when intra-document pre-order
  /// range splitting is additionally sound, else nullptr (doc-granular
  /// partitions only).
  const Op* range_split = nullptr;
  /// Human-readable reason when ineligible (for --explain / tests).
  std::string reason;
};

/// A fully compiled query module.
struct CompiledQuery {
  OpPtr plan;
  /// Prolog variables in declaration order; a null plan means `external`.
  std::vector<std::pair<Symbol, OpPtr>> globals;
  std::unordered_map<Symbol, CompiledFunction> functions;
  /// Intra-query parallelism eligibility (AnalyzeParallel).
  ParallelPlanInfo parallel;
};

/// Compiles a normalized Core query module.
Result<CompiledQuery> CompileQuery(const Query& core);

/// Compiles one normalized Core expression with no variables in tuple
/// scope (free variables become Var[q] algebra-context lookups).
Result<OpPtr> CompileExpr(const ExprPtr& core);

}  // namespace xqc

#endif  // XQC_COMPILE_COMPILER_H_
