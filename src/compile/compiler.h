// Algebraic compilation: XQuery Core -> the Table 1 algebra (Section 4).
//
// Implements the paper's inference rules: FLWOR clauses compile through the
// auxiliary judgment [Clauses]_(Op0) that threads the intermediate tuple
// plan (Figure 2: FOR / FORAT / LET / WHERE / ORDERBY), variables become
// compiled tuple-field accesses IN#q (the "direct compiled memory access"
// the paper credits for much of the algebra speedup), typeswitch compiles
// per Figure 3 into TypeMatches + Cond over a common tuple field, path
// steps become TreeJoin, and `as T` assertions become TypeAssert.
#ifndef XQC_COMPILE_COMPILER_H_
#define XQC_COMPILE_COMPILER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/algebra/op.h"
#include "src/xquery/ast.h"

namespace xqc {

/// A user-defined function compiled to a plan over Var[param] leaves.
struct CompiledFunction {
  Symbol name;
  std::vector<Symbol> params;
  std::vector<std::optional<SequenceType>> param_types;
  std::optional<SequenceType> return_type;
  OpPtr plan;
};

/// A fully compiled query module.
struct CompiledQuery {
  OpPtr plan;
  /// Prolog variables in declaration order; a null plan means `external`.
  std::vector<std::pair<Symbol, OpPtr>> globals;
  std::unordered_map<Symbol, CompiledFunction> functions;
};

/// Compiles a normalized Core query module.
Result<CompiledQuery> CompileQuery(const Query& core);

/// Compiles one normalized Core expression with no variables in tuple
/// scope (free variables become Var[q] algebra-context lookups).
Result<OpPtr> CompileExpr(const ExprPtr& core);

}  // namespace xqc

#endif  // XQC_COMPILE_COMPILER_H_
