# Empty compiler generated dependencies file for auction_analytics.
# This may be replaced when dependencies are built.
