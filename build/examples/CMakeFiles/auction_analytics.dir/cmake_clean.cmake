file(REMOVE_RECURSE
  "CMakeFiles/auction_analytics.dir/auction_analytics.cc.o"
  "CMakeFiles/auction_analytics.dir/auction_analytics.cc.o.d"
  "auction_analytics"
  "auction_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
