file(REMOVE_RECURSE
  "CMakeFiles/clio_mapping.dir/clio_mapping.cc.o"
  "CMakeFiles/clio_mapping.dir/clio_mapping.cc.o.d"
  "clio_mapping"
  "clio_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clio_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
