# Empty compiler generated dependencies file for clio_mapping.
# This may be replaced when dependencies are built.
