# Empty compiler generated dependencies file for plan_explorer.
# This may be replaced when dependencies are built.
