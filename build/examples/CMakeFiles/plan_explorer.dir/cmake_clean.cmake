file(REMOVE_RECURSE
  "CMakeFiles/plan_explorer.dir/plan_explorer.cc.o"
  "CMakeFiles/plan_explorer.dir/plan_explorer.cc.o.d"
  "plan_explorer"
  "plan_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
