# Empty dependencies file for xqc_shell.
# This may be replaced when dependencies are built.
