file(REMOVE_RECURSE
  "CMakeFiles/xqc_shell.dir/xqc_shell.cc.o"
  "CMakeFiles/xqc_shell.dir/xqc_shell.cc.o.d"
  "xqc_shell"
  "xqc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
