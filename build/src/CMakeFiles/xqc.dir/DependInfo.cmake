
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/op.cc" "src/CMakeFiles/xqc.dir/algebra/op.cc.o" "gcc" "src/CMakeFiles/xqc.dir/algebra/op.cc.o.d"
  "/root/repo/src/base/strutil.cc" "src/CMakeFiles/xqc.dir/base/strutil.cc.o" "gcc" "src/CMakeFiles/xqc.dir/base/strutil.cc.o.d"
  "/root/repo/src/base/symbol.cc" "src/CMakeFiles/xqc.dir/base/symbol.cc.o" "gcc" "src/CMakeFiles/xqc.dir/base/symbol.cc.o.d"
  "/root/repo/src/clio/clio.cc" "src/CMakeFiles/xqc.dir/clio/clio.cc.o" "gcc" "src/CMakeFiles/xqc.dir/clio/clio.cc.o.d"
  "/root/repo/src/compile/compiler.cc" "src/CMakeFiles/xqc.dir/compile/compiler.cc.o" "gcc" "src/CMakeFiles/xqc.dir/compile/compiler.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/xqc.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/xqc.dir/engine/engine.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/CMakeFiles/xqc.dir/interp/interpreter.cc.o" "gcc" "src/CMakeFiles/xqc.dir/interp/interpreter.cc.o.d"
  "/root/repo/src/opt/key_class.cc" "src/CMakeFiles/xqc.dir/opt/key_class.cc.o" "gcc" "src/CMakeFiles/xqc.dir/opt/key_class.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/xqc.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/xqc.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/projection_infer.cc" "src/CMakeFiles/xqc.dir/opt/projection_infer.cc.o" "gcc" "src/CMakeFiles/xqc.dir/opt/projection_infer.cc.o.d"
  "/root/repo/src/runtime/builtins.cc" "src/CMakeFiles/xqc.dir/runtime/builtins.cc.o" "gcc" "src/CMakeFiles/xqc.dir/runtime/builtins.cc.o.d"
  "/root/repo/src/runtime/construct.cc" "src/CMakeFiles/xqc.dir/runtime/construct.cc.o" "gcc" "src/CMakeFiles/xqc.dir/runtime/construct.cc.o.d"
  "/root/repo/src/runtime/context.cc" "src/CMakeFiles/xqc.dir/runtime/context.cc.o" "gcc" "src/CMakeFiles/xqc.dir/runtime/context.cc.o.d"
  "/root/repo/src/runtime/eval.cc" "src/CMakeFiles/xqc.dir/runtime/eval.cc.o" "gcc" "src/CMakeFiles/xqc.dir/runtime/eval.cc.o.d"
  "/root/repo/src/runtime/joins.cc" "src/CMakeFiles/xqc.dir/runtime/joins.cc.o" "gcc" "src/CMakeFiles/xqc.dir/runtime/joins.cc.o.d"
  "/root/repo/src/types/compare.cc" "src/CMakeFiles/xqc.dir/types/compare.cc.o" "gcc" "src/CMakeFiles/xqc.dir/types/compare.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/xqc.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/xqc.dir/types/schema.cc.o.d"
  "/root/repo/src/types/seqtype.cc" "src/CMakeFiles/xqc.dir/types/seqtype.cc.o" "gcc" "src/CMakeFiles/xqc.dir/types/seqtype.cc.o.d"
  "/root/repo/src/xmark/xmark.cc" "src/CMakeFiles/xqc.dir/xmark/xmark.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xmark/xmark.cc.o.d"
  "/root/repo/src/xml/atomic.cc" "src/CMakeFiles/xqc.dir/xml/atomic.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/atomic.cc.o.d"
  "/root/repo/src/xml/axes.cc" "src/CMakeFiles/xqc.dir/xml/axes.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/axes.cc.o.d"
  "/root/repo/src/xml/item.cc" "src/CMakeFiles/xqc.dir/xml/item.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/item.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xqc.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/project.cc" "src/CMakeFiles/xqc.dir/xml/project.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/project.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xqc.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/xqc.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/xqc.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/xqc.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/normalize.cc" "src/CMakeFiles/xqc.dir/xquery/normalize.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xquery/normalize.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/xqc.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/xqc.dir/xquery/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
