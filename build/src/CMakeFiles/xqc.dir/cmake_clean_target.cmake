file(REMOVE_RECURSE
  "libxqc.a"
)
