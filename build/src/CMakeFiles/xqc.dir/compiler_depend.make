# Empty compiler generated dependencies file for xqc.
# This may be replaced when dependencies are built.
