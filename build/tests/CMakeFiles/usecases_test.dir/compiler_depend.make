# Empty compiler generated dependencies file for usecases_test.
# This may be replaced when dependencies are built.
