file(REMOVE_RECURSE
  "CMakeFiles/usecases_test.dir/test_util.cc.o"
  "CMakeFiles/usecases_test.dir/test_util.cc.o.d"
  "CMakeFiles/usecases_test.dir/usecases_test.cc.o"
  "CMakeFiles/usecases_test.dir/usecases_test.cc.o.d"
  "usecases_test"
  "usecases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
