# Empty compiler generated dependencies file for key_class_test.
# This may be replaced when dependencies are built.
