file(REMOVE_RECURSE
  "CMakeFiles/key_class_test.dir/key_class_test.cc.o"
  "CMakeFiles/key_class_test.dir/key_class_test.cc.o.d"
  "CMakeFiles/key_class_test.dir/test_util.cc.o"
  "CMakeFiles/key_class_test.dir/test_util.cc.o.d"
  "key_class_test"
  "key_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
