file(REMOVE_RECURSE
  "CMakeFiles/serializer_test.dir/serializer_test.cc.o"
  "CMakeFiles/serializer_test.dir/serializer_test.cc.o.d"
  "CMakeFiles/serializer_test.dir/test_util.cc.o"
  "CMakeFiles/serializer_test.dir/test_util.cc.o.d"
  "serializer_test"
  "serializer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
