# Empty compiler generated dependencies file for serializer_test.
# This may be replaced when dependencies are built.
