file(REMOVE_RECURSE
  "CMakeFiles/interp_test.dir/interp_test.cc.o"
  "CMakeFiles/interp_test.dir/interp_test.cc.o.d"
  "CMakeFiles/interp_test.dir/test_util.cc.o"
  "CMakeFiles/interp_test.dir/test_util.cc.o.d"
  "interp_test"
  "interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
