# Empty dependencies file for project_test.
# This may be replaced when dependencies are built.
