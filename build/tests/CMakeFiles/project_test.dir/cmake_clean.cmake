file(REMOVE_RECURSE
  "CMakeFiles/project_test.dir/project_test.cc.o"
  "CMakeFiles/project_test.dir/project_test.cc.o.d"
  "CMakeFiles/project_test.dir/test_util.cc.o"
  "CMakeFiles/project_test.dir/test_util.cc.o.d"
  "project_test"
  "project_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
