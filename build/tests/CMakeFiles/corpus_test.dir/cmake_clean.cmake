file(REMOVE_RECURSE
  "CMakeFiles/corpus_test.dir/corpus_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus_test.cc.o.d"
  "CMakeFiles/corpus_test.dir/test_util.cc.o"
  "CMakeFiles/corpus_test.dir/test_util.cc.o.d"
  "corpus_test"
  "corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
