file(REMOVE_RECURSE
  "CMakeFiles/semantics_test.dir/semantics_test.cc.o"
  "CMakeFiles/semantics_test.dir/semantics_test.cc.o.d"
  "CMakeFiles/semantics_test.dir/test_util.cc.o"
  "CMakeFiles/semantics_test.dir/test_util.cc.o.d"
  "semantics_test"
  "semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
