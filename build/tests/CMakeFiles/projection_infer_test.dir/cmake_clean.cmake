file(REMOVE_RECURSE
  "CMakeFiles/projection_infer_test.dir/projection_infer_test.cc.o"
  "CMakeFiles/projection_infer_test.dir/projection_infer_test.cc.o.d"
  "CMakeFiles/projection_infer_test.dir/test_util.cc.o"
  "CMakeFiles/projection_infer_test.dir/test_util.cc.o.d"
  "projection_infer_test"
  "projection_infer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
