
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/projection_infer_test.cc" "tests/CMakeFiles/projection_infer_test.dir/projection_infer_test.cc.o" "gcc" "tests/CMakeFiles/projection_infer_test.dir/projection_infer_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/projection_infer_test.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/projection_infer_test.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xqc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
