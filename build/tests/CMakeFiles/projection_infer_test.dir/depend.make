# Empty dependencies file for projection_infer_test.
# This may be replaced when dependencies are built.
