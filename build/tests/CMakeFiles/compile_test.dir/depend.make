# Empty dependencies file for compile_test.
# This may be replaced when dependencies are built.
