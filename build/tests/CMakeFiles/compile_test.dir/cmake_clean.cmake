file(REMOVE_RECURSE
  "CMakeFiles/compile_test.dir/compile_test.cc.o"
  "CMakeFiles/compile_test.dir/compile_test.cc.o.d"
  "CMakeFiles/compile_test.dir/test_util.cc.o"
  "CMakeFiles/compile_test.dir/test_util.cc.o.d"
  "compile_test"
  "compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
