# Empty compiler generated dependencies file for builtins_test.
# This may be replaced when dependencies are built.
