file(REMOVE_RECURSE
  "CMakeFiles/builtins_test.dir/builtins_test.cc.o"
  "CMakeFiles/builtins_test.dir/builtins_test.cc.o.d"
  "CMakeFiles/builtins_test.dir/test_util.cc.o"
  "CMakeFiles/builtins_test.dir/test_util.cc.o.d"
  "builtins_test"
  "builtins_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
