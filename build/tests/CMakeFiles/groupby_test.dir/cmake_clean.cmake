file(REMOVE_RECURSE
  "CMakeFiles/groupby_test.dir/groupby_test.cc.o"
  "CMakeFiles/groupby_test.dir/groupby_test.cc.o.d"
  "CMakeFiles/groupby_test.dir/test_util.cc.o"
  "CMakeFiles/groupby_test.dir/test_util.cc.o.d"
  "groupby_test"
  "groupby_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
