# Empty dependencies file for clio_test.
# This may be replaced when dependencies are built.
