file(REMOVE_RECURSE
  "CMakeFiles/clio_test.dir/clio_test.cc.o"
  "CMakeFiles/clio_test.dir/clio_test.cc.o.d"
  "CMakeFiles/clio_test.dir/test_util.cc.o"
  "CMakeFiles/clio_test.dir/test_util.cc.o.d"
  "clio_test"
  "clio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
