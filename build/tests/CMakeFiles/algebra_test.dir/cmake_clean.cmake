file(REMOVE_RECURSE
  "CMakeFiles/algebra_test.dir/algebra_test.cc.o"
  "CMakeFiles/algebra_test.dir/algebra_test.cc.o.d"
  "CMakeFiles/algebra_test.dir/test_util.cc.o"
  "CMakeFiles/algebra_test.dir/test_util.cc.o.d"
  "algebra_test"
  "algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
