file(REMOVE_RECURSE
  "CMakeFiles/bench_projection.dir/bench_projection.cc.o"
  "CMakeFiles/bench_projection.dir/bench_projection.cc.o.d"
  "bench_projection"
  "bench_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
