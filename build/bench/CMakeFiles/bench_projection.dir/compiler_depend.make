# Empty compiler generated dependencies file for bench_projection.
# This may be replaced when dependencies are built.
