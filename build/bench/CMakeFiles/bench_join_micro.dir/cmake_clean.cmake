file(REMOVE_RECURSE
  "CMakeFiles/bench_join_micro.dir/bench_join_micro.cc.o"
  "CMakeFiles/bench_join_micro.dir/bench_join_micro.cc.o.d"
  "bench_join_micro"
  "bench_join_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
