# Empty dependencies file for bench_join_micro.
# This may be replaced when dependencies are built.
