# Empty dependencies file for bench_table3.
# This may be replaced when dependencies are built.
