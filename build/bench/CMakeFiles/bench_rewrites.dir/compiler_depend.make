# Empty compiler generated dependencies file for bench_rewrites.
# This may be replaced when dependencies are built.
