file(REMOVE_RECURSE
  "CMakeFiles/bench_rewrites.dir/bench_rewrites.cc.o"
  "CMakeFiles/bench_rewrites.dir/bench_rewrites.cc.o.d"
  "bench_rewrites"
  "bench_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
